//! Shared harness for the corpus sweep: the `corpus` binary, the
//! `benchguard --corpus-only` guard and the CI smoke job all go through
//! [`run_corpus`] + [`corpus_json`], so their numbers agree.
//!
//! Everything aggregated here except the wall clocks is deterministic:
//! the corpus stream is seeded, the solver is deterministic, and pooled
//! runs join case handles in seed order — so `BENCH_corpus.json` counts
//! are exact-comparable against the committed baseline.

use std::time::Instant;

use modsyn_corpus::{
    corpus_case, evaluate_case, CaseReport, EvalOptions, Expectation, Rejection, Verdict,
};
use modsyn_obs::Json;
use modsyn_par::WorkerPool;

/// One corpus sweep: per-case reports (in seed order) plus the overall
/// wall clock.
pub struct CorpusRun {
    /// First seed of the sweep.
    pub start: u64,
    /// Number of consecutive seeds evaluated.
    pub count: u64,
    /// Per-case evaluation reports, ordered by seed.
    pub reports: Vec<CaseReport>,
    /// Overall wall clock, informational only.
    pub wall_s: f64,
}

impl CorpusRun {
    /// Every violating line across the run: case-level violations plus
    /// per-method violation verdicts, prefixed with the case name.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for report in &self.reports {
            for v in &report.violations {
                out.push(format!("{}: {v}", report.name));
            }
            for o in &report.outcomes {
                if let Verdict::Violation(v) = &o.verdict {
                    out.push(format!("{}/{}: {v}", report.name, o.method));
                }
            }
        }
        out
    }

    /// `true` when every case satisfied the three-valued contract.
    pub fn passed(&self) -> bool {
        self.reports.iter().all(CaseReport::ok)
    }
}

/// Evaluates seeds `start..start + count` of the corpus stream. With
/// `jobs > 1` the cases run on a [`WorkerPool`]; handles are joined in
/// seed order, so the reports (and every aggregate built from them) are
/// identical to a sequential run — only the wall clock changes.
pub fn run_corpus(start: u64, count: u64, jobs: usize, eval: &EvalOptions) -> CorpusRun {
    let started = Instant::now();
    let reports = if jobs <= 1 {
        (start..start + count)
            .map(|seed| {
                let (stg, expectation) = corpus_case(seed);
                evaluate_case(&stg, expectation, eval)
            })
            .collect()
    } else {
        let pool = WorkerPool::new(jobs);
        let handles: Vec<_> = (start..start + count)
            .map(|seed| {
                let eval = eval.clone();
                pool.submit(&format!("corpus:{seed}"), move || {
                    let (stg, expectation) = corpus_case(seed);
                    evaluate_case(&stg, expectation, &eval)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluate_case catches panics internally"))
            .collect()
    };
    CorpusRun {
        start,
        count,
        reports,
        wall_s: started.elapsed().as_secs_f64(),
    }
}

/// The size tiers of the corpus report, bounded by specification state
/// count. Used for the per-tier sections of `BENCH_corpus.json`.
pub const CORPUS_TIERS: [(&str, usize); 4] = [
    ("xs", 20),
    ("small", 50),
    ("medium", 120),
    ("large", usize::MAX),
];

fn tier_of(states: usize) -> &'static str {
    CORPUS_TIERS
        .iter()
        .find(|(_, bound)| states < *bound)
        .map(|(name, _)| *name)
        .unwrap_or("large")
}

/// min/total/max summary of one size dimension across the run.
fn size_json(values: impl Iterator<Item = usize> + Clone) -> Json {
    Json::obj([
        ("min", Json::from(values.clone().min().unwrap_or(0))),
        ("max", Json::from(values.clone().max().unwrap_or(0))),
        ("total", Json::from(values.sum::<usize>())),
    ])
}

/// The full `BENCH_corpus.json` document for one sweep.
pub fn corpus_json(run: &CorpusRun, eval: &EvalOptions) -> Json {
    let reports = &run.reports;
    let violations = run.violations();

    let expect = |e: Expectation| reports.iter().filter(|r| r.expectation == e).count();
    let outcomes = || reports.iter().flat_map(|r| r.outcomes.iter());
    let totals = Json::obj([
        ("cases", Json::from(reports.len())),
        ("in_theory", Json::from(expect(Expectation::InTheory))),
        (
            "beyond_theory",
            Json::from(expect(Expectation::BeyondTheory)),
        ),
        ("method_runs", Json::from(outcomes().count())),
        (
            "certified",
            Json::from(
                outcomes()
                    .filter(|o| o.verdict == Verdict::Certified)
                    .count(),
            ),
        ),
        (
            "rejected",
            Json::from(
                outcomes()
                    .filter(|o| matches!(o.verdict, Verdict::Rejected(_)))
                    .count(),
            ),
        ),
        ("violations", Json::from(violations.len())),
    ]);

    let sizes = Json::obj([
        ("signals", size_json(reports.iter().map(|r| r.signals))),
        ("places", size_json(reports.iter().map(|r| r.places))),
        (
            "transitions",
            size_json(reports.iter().map(|r| r.transitions)),
        ),
        ("states", size_json(reports.iter().map(|r| r.states))),
    ]);

    let tiers: Vec<Json> = CORPUS_TIERS
        .iter()
        .map(|(name, _)| {
            let of_tier = || reports.iter().filter(|r| tier_of(r.states) == *name);
            Json::obj([
                ("tier", Json::from(*name)),
                ("cases", Json::from(of_tier().count())),
                (
                    "in_theory",
                    Json::from(
                        of_tier()
                            .filter(|r| r.expectation == Expectation::InTheory)
                            .count(),
                    ),
                ),
                (
                    "beyond_theory",
                    Json::from(
                        of_tier()
                            .filter(|r| r.expectation == Expectation::BeyondTheory)
                            .count(),
                    ),
                ),
                (
                    "wall_s",
                    Json::from(
                        of_tier()
                            .flat_map(|r| r.outcomes.iter().map(|o| o.wall_s))
                            .sum::<f64>(),
                    ),
                ),
            ])
        })
        .collect();

    // Per method: every method string the run produced, in first-seen
    // order, with its certified count and its rejection taxonomy.
    let mut method_names: Vec<String> = Vec::new();
    for o in outcomes() {
        let name = o.method.to_string();
        if !method_names.contains(&name) {
            method_names.push(name);
        }
    }
    let methods: Vec<Json> = method_names
        .iter()
        .map(|name| {
            let of_method = || outcomes().filter(|o| o.method.to_string() == *name);
            let rejections: Vec<(&'static str, Json)> = Rejection::all()
                .iter()
                .filter_map(|r| {
                    let n = of_method()
                        .filter(|o| o.verdict == Verdict::Rejected(*r))
                        .count();
                    (n > 0).then_some((r.tag(), Json::from(n)))
                })
                .collect();
            Json::obj([
                ("method", Json::from(name.as_str())),
                ("runs", Json::from(of_method().count())),
                (
                    "certified",
                    Json::from(
                        of_method()
                            .filter(|o| o.verdict == Verdict::Certified)
                            .count(),
                    ),
                ),
                (
                    "literals_total",
                    Json::from(of_method().map(|o| o.literals).sum::<usize>()),
                ),
                (
                    "final_signals_total",
                    Json::from(of_method().map(|o| o.final_signals).sum::<usize>()),
                ),
                ("rejections", Json::obj(rejections)),
                (
                    "wall_s",
                    Json::from(of_method().map(|o| o.wall_s).sum::<f64>()),
                ),
            ])
        })
        .collect();

    Json::obj([
        ("version", Json::from(1u64)),
        (
            "config",
            Json::obj([
                ("start", Json::from(run.start)),
                ("count", Json::from(run.count)),
                ("backtrack_limit", Json::from(eval.backtrack_limit)),
                (
                    "comparator_backtrack_limit",
                    Json::from(eval.comparator_backtrack_limit),
                ),
                ("direct_state_cap", Json::from(eval.direct_state_cap)),
                (
                    "equivalence_state_cap",
                    Json::from(eval.equivalence_state_cap),
                ),
            ]),
        ),
        ("totals", totals),
        ("sizes", sizes),
        ("tiers", Json::Arr(tiers)),
        ("methods", Json::Arr(methods)),
        (
            "violations",
            Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
        ),
        ("passed", Json::from(run.passed())),
        ("wall_s", Json::from(run.wall_s)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(jobs: usize) -> CorpusRun {
        // Seeds 16..24 cover a sync product, articulations, a bare leaf
        // and one beyond-theory probe (seed 23) while staying cheap.
        run_corpus(16, 8, jobs, &EvalOptions::default())
    }

    #[test]
    fn corpus_json_counts_are_consistent() {
        let run = small_run(1);
        assert!(run.passed(), "{:?}", run.violations());
        let doc = corpus_json(&run, &EvalOptions::default());
        let parsed = modsyn_obs::parse_json(&doc.pretty()).unwrap();
        let totals = parsed.get("totals").unwrap();
        assert_eq!(totals.get("cases").unwrap().as_f64(), Some(8.0));
        assert_eq!(totals.get("beyond_theory").unwrap().as_f64(), Some(1.0));
        assert_eq!(totals.get("violations").unwrap().as_f64(), Some(0.0));
        let tier_cases: f64 = parsed
            .get("tiers")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|t| t.get("cases").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(tier_cases, 8.0);
        let methods = parsed.get("methods").unwrap().as_arr().unwrap();
        let modular = methods
            .iter()
            .find(|m| m.get("method").unwrap().as_str() == Some("modular"))
            .expect("modular section");
        // Modular certifies every in-theory case; the probe may go either
        // way, so certified is at least the in-theory count.
        assert!(modular.get("certified").unwrap().as_f64().unwrap() >= 7.0);
        assert!(parsed.get("passed").unwrap().as_bool() == Some(true));
    }

    #[test]
    fn pooled_run_matches_sequential_aggregates() {
        let (seq, pooled) = (small_run(1), small_run(4));
        let eval = EvalOptions::default();
        let strip_walls = |doc: Json| {
            // Re-render with wall clocks zeroed out by parsing and
            // comparing only deterministic scalars.
            let parsed = modsyn_obs::parse_json(&doc.pretty()).unwrap();
            (
                parsed.get("totals").unwrap().pretty(),
                parsed.get("sizes").unwrap().pretty(),
                parsed.get("methods").unwrap().pretty().len(),
            )
        };
        let a = strip_walls(corpus_json(&seq, &eval));
        let b = strip_walls(corpus_json(&pooled, &eval));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
