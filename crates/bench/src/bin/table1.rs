//! Regenerates the paper's Table 1 (experiment E1).
//!
//! For every benchmark, runs the modular method, the direct (Vanbekbergen)
//! method and the Lavagno-style method under the standard backtrack limit,
//! and prints our measurement next to the paper's number.
//!
//! Run with: `cargo run -p modsyn-bench --release --bin table1 [limit]`
//!
//! Besides the text table, writes every measurement as machine-readable
//! records to `BENCH_table1.json` in the current directory.

use modsyn_bench::{
    paper_row, run_table, table1_json, Measured, PaperOutcome, TABLE1_BACKTRACK_LIMIT,
};

fn paper_cell(outcome: &PaperOutcome) -> String {
    match outcome {
        PaperOutcome::Solved {
            final_signals,
            literals,
            cpu,
        } => {
            format!("{final_signals} sig / {literals} lit / {cpu}s")
        }
        PaperOutcome::BacktrackLimit { cpu: Some(c) } => format!("SAT Backtrack Limit ({c}s)"),
        PaperOutcome::BacktrackLimit { cpu: None } => "SAT Backtrack Limit (> 3600s)".into(),
        PaperOutcome::InternalStateError => "Internal State Error*".into(),
        PaperOutcome::NonFreeChoice => "Non-Free-Choice STG".into(),
    }
}

fn main() {
    let limit: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_BACKTRACK_LIMIT);

    println!("Table 1 reproduction (backtrack limit {limit}); paper values in parentheses.\n");
    println!(
        "{:<16} {:>6} {:>4} | {:<44} | {:<44} | {:<44}",
        "STG",
        "states",
        "sig",
        "Our Method (Decomposition)",
        "Vanbekbergen et al. (No Decomposition)",
        "Lavagno and Moon et al."
    );
    println!("{}", "-".repeat(170));

    let rows = run_table(limit);
    for (name, modular, direct, lavagno) in &rows {
        let paper = paper_row(name).expect("row exists");
        println!(
            "{:<16} {:>6} {:>4} | {:<44} | {:<44} | {:<44}",
            name,
            paper.initial_states,
            paper.initial_signals,
            format!(
                "{} ({} sig / {} lit / {}s)",
                modular.cell(),
                paper.ours.1,
                paper.ours.2,
                paper.ours.3
            ),
            format!("{} ({})", direct.cell(), paper_cell(&paper.direct)),
            format!("{} ({})", lavagno.cell(), paper_cell(&paper.lavagno)),
        );
    }

    println!("\nsummary:");
    println!("  modular vs direct wall-clock on the large rows (direct time is time-to-abort when it hit the limit):");
    for (name, modular, direct, _) in &rows {
        let Some(m) = modular.cpu() else { continue };
        let Some(d) = direct.cpu() else { continue };
        if d < 0.05 {
            continue; // too small to compare meaningfully
        }
        let aborted = matches!(direct, Measured::BacktrackLimit { .. });
        println!(
            "    {name:<16} modular {m:>7.3}s vs direct {d:>7.3}s{} -> {:.0}x",
            if aborted { " (abort)" } else { "" },
            d / m.max(1e-4)
        );
    }
    let direct_aborts: Vec<&str> = rows
        .iter()
        .filter(|(_, _, d, _)| matches!(d, Measured::BacktrackLimit { .. }))
        .map(|(n, ..)| *n)
        .collect();
    println!(
        "  direct aborted on: {direct_aborts:?} (paper: [\"mr0\", \"mr1\", \"mmu0\", \"mmu1\"])"
    );
    let lavagno_errors: Vec<(&str, String)> = rows
        .iter()
        .filter_map(|(n, _, _, l)| match l {
            Measured::NotFreeChoice | Measured::StateSplittingRequired => Some((*n, l.cell())),
            _ => None,
        })
        .collect();
    println!(
        "  lavagno-style rejections: {lavagno_errors:?} (paper: alex-nonfc non-FC; mmu0, pa internal state error)"
    );

    let json = table1_json(limit, &rows);
    match std::fs::write("BENCH_table1.json", json.pretty()) {
        Ok(()) => println!("\nwrote BENCH_table1.json ({} records)", 3 * rows.len()),
        Err(e) => eprintln!("error: cannot write BENCH_table1.json: {e}"),
    }
}
