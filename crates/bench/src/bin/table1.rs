//! Regenerates the paper's Table 1 (experiment E1).
//!
//! For every benchmark, runs the modular method, the direct (Vanbekbergen)
//! method and the Lavagno-style method under the standard backtrack limit,
//! and prints our measurement next to the paper's number.
//!
//! Run with:
//! `cargo run -p modsyn-bench --release --bin table1 [limit] [--jobs N] [--small]`
//!
//! `--jobs N` (default 1) additionally re-runs the table on an N-worker
//! pool and reports the wall-clock comparison; `--small` restricts the run
//! to the rows with fewer than 80 initial states (the CI smoke subset).
//!
//! Besides the text table, writes every measurement as machine-readable
//! records to `BENCH_table1.json` in the current directory; with
//! `--jobs N > 1` the document gains a `parallel` section with per-row and
//! total wall clocks for jobs=1 vs jobs=N.

use std::process::ExitCode;

use modsyn_bench::{
    paper_row, parallel_json, run_rows_pooled, run_rows_timed, small_rows,
    table1_json_with_parallel, Measured, PaperOutcome, PaperRow, PAPER_TABLE1,
    TABLE1_BACKTRACK_LIMIT,
};

fn paper_cell(outcome: &PaperOutcome) -> String {
    match outcome {
        PaperOutcome::Solved {
            final_signals,
            literals,
            cpu,
        } => {
            format!("{final_signals} sig / {literals} lit / {cpu}s")
        }
        PaperOutcome::BacktrackLimit { cpu: Some(c) } => format!("SAT Backtrack Limit ({c}s)"),
        PaperOutcome::BacktrackLimit { cpu: None } => "SAT Backtrack Limit (> 3600s)".into(),
        PaperOutcome::InternalStateError => "Internal State Error*".into(),
        PaperOutcome::NonFreeChoice => "Non-Free-Choice STG".into(),
    }
}

struct Args {
    limit: u64,
    jobs: usize,
    small: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        limit: TABLE1_BACKTRACK_LIMIT,
        jobs: 1,
        small: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| "bad --jobs value".to_string())?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--small" => args.small = true,
            other => {
                args.limit = other.parse().map_err(|_| {
                    format!("usage: table1 [limit] [--jobs N] [--small] (got {other:?})")
                })?;
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let limit = args.limit;
    let selected: Vec<PaperRow> = if args.small {
        small_rows()
    } else {
        PAPER_TABLE1.to_vec()
    };

    println!("Table 1 reproduction (backtrack limit {limit}); paper values in parentheses.\n");
    println!(
        "{:<16} {:>6} {:>4} | {:<44} | {:<44} | {:<44}",
        "STG",
        "states",
        "sig",
        "Our Method (Decomposition)",
        "Vanbekbergen et al. (No Decomposition)",
        "Lavagno and Moon et al."
    );
    println!("{}", "-".repeat(170));

    let sequential = run_rows_timed(limit, &selected);
    let rows = &sequential.rows;
    for (name, modular, direct, lavagno) in rows {
        let paper = paper_row(name).expect("row exists");
        println!(
            "{:<16} {:>6} {:>4} | {:<44} | {:<44} | {:<44}",
            name,
            paper.initial_states,
            paper.initial_signals,
            format!(
                "{} ({} sig / {} lit / {}s)",
                modular.cell(),
                paper.ours.1,
                paper.ours.2,
                paper.ours.3
            ),
            format!("{} ({})", direct.cell(), paper_cell(&paper.direct)),
            format!("{} ({})", lavagno.cell(), paper_cell(&paper.lavagno)),
        );
    }

    println!("\nsummary:");
    println!("  modular vs direct wall-clock on the large rows (direct time is time-to-abort when it hit the limit):");
    for (name, modular, direct, _) in rows {
        let Some(m) = modular.cpu() else { continue };
        let Some(d) = direct.cpu() else { continue };
        if d < 0.05 {
            continue; // too small to compare meaningfully
        }
        let aborted = matches!(direct, Measured::BacktrackLimit { .. });
        println!(
            "    {name:<16} modular {m:>7.3}s vs direct {d:>7.3}s{} -> {:.0}x",
            if aborted { " (abort)" } else { "" },
            d / m.max(1e-4)
        );
    }
    let direct_aborts: Vec<&str> = rows
        .iter()
        .filter(|(_, _, d, _)| matches!(d, Measured::BacktrackLimit { .. }))
        .map(|(n, ..)| *n)
        .collect();
    println!(
        "  direct aborted on: {direct_aborts:?} (paper: [\"mr0\", \"mr1\", \"mmu0\", \"mmu1\"])"
    );
    let lavagno_errors: Vec<(&str, String)> = rows
        .iter()
        .filter_map(|(n, _, _, l)| match l {
            Measured::NotFreeChoice | Measured::StateSplittingRequired => Some((*n, l.cell())),
            _ => None,
        })
        .collect();
    println!(
        "  lavagno-style rejections: {lavagno_errors:?} (paper: alex-nonfc non-FC; mmu0, pa internal state error)"
    );

    let parallel = if args.jobs > 1 {
        println!(
            "\nparallel: re-running the table on a {}-worker pool...",
            args.jobs
        );
        let pooled = run_rows_pooled(limit, args.jobs, &selected);
        println!(
            "  jobs=1 total {:>7.2}s vs jobs={} total {:>7.2}s -> {:.2}x",
            sequential.total_wall_s,
            args.jobs,
            pooled.total_wall_s,
            sequential.total_wall_s / pooled.total_wall_s.max(1e-9),
        );
        Some(parallel_json(args.jobs, &sequential, &pooled))
    } else {
        None
    };

    let json = table1_json_with_parallel(limit, rows, parallel);
    match std::fs::write("BENCH_table1.json", json.pretty()) {
        Ok(()) => {
            println!("\nwrote BENCH_table1.json ({} records)", 3 * rows.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write BENCH_table1.json: {e}");
            ExitCode::FAILURE
        }
    }
}
