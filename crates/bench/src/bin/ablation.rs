//! Ablation studies (experiments A1/A2/A3, not tabulated in the paper).
//!
//! * A1 — decomposition: formula sizes of the modular flow vs the direct
//!   encoding across every benchmark.
//! * A2 — SAT engine: conflict-driven learning vs chronological
//!   branch-and-bound, and branching heuristics, on the direct encodings.
//! * A3 — assignment extraction: SAT's first model vs the BDD's
//!   minimum-excitation model (the paper conclusion's area refinement).
//!
//! Run with: `cargo run -p modsyn-bench --release --bin ablation`
//!
//! The A1 (formula sizes) and A3 (assignment extraction) measurements are
//! also written as machine-readable records to `BENCH_ablation.json`.

use modsyn::{encode_csc, modular_resolve, synthesize, CscSolveOptions, Method, SynthesisOptions};
use modsyn_obs::Json;
use modsyn_sat::{Heuristic, Outcome, Solver, SolverOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn main() {
    let mut a1_records: Vec<Json> = Vec::new();
    println!("A1: decomposition ablation — largest SAT instance solved\n");
    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "STG", "modular (cls)", "direct (cls)", "ratio"
    );
    for (name, stg) in benchmarks::all() {
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let analysis = sg.csc_analysis();
        let direct = encode_csc(&sg, &analysis, analysis.lower_bound.max(1));
        let modular = modular_resolve(&sg, &CscSolveOptions::default());
        let largest = modular
            .as_ref()
            .ok()
            .and_then(|o| o.formulas.iter().map(|f| f.clauses).max());
        match largest {
            Some(c) => {
                let ratio = direct.formula.clause_count() as f64 / c.max(1) as f64;
                println!(
                    "{:<16} {:>14} {:>14} {:>7.1}x",
                    name,
                    c,
                    direct.formula.clause_count(),
                    ratio
                );
                a1_records.push(Json::obj([
                    ("benchmark", Json::from(name)),
                    ("modular_largest_clauses", Json::from(c)),
                    ("direct_clauses", Json::from(direct.formula.clause_count())),
                    ("ratio", Json::from(ratio)),
                ]));
            }
            None => {
                println!(
                    "{name:<16} {:>14} {:>14}",
                    "-",
                    direct.formula.clause_count()
                );
                a1_records.push(Json::obj([
                    ("benchmark", Json::from(name)),
                    ("modular_largest_clauses", Json::Null),
                    ("direct_clauses", Json::from(direct.formula.clause_count())),
                ]));
            }
        }
    }

    println!("\nA2: SAT engine ablation on direct encodings (backtracks to verdict, limit 50k)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "STG", "cdcl", "chrono-jw", "chrono-first"
    );
    for name in ["mmu1", "vbe4a", "pa", "wrdata", "nouse", "vbe-ex2"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let analysis = sg.csc_analysis();
        let m = analysis.lower_bound.max(1);
        let encoding = encode_csc(&sg, &analysis, m);
        let mut cells = Vec::new();
        for (learning, heuristic) in [
            (true, Heuristic::Activity),
            (false, Heuristic::JeroslowWang),
            (false, Heuristic::FirstUnassigned),
        ] {
            let mut solver = Solver::new(
                &encoding.formula,
                SolverOptions {
                    heuristic,
                    learning,
                    max_backtracks: Some(50_000),
                    max_decisions: None,
                },
            );
            let outcome = solver.solve();
            let stats = solver.stats();
            cells.push(match outcome {
                Outcome::Satisfiable(_) => format!("{}", stats.backtracks),
                Outcome::Unsatisfiable => format!("{} (unsat)", stats.backtracks),
                _ => "limit".to_string(),
            });
        }
        println!(
            "{:<16} {:>10} {:>12} {:>12}",
            name, cells[0], cells[1], cells[2]
        );
    }

    println!("\nA4: PLA sharing — per-output covers vs shared product terms\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "STG", "so-terms", "shared-terms", "so-lits", "shared-lits"
    );
    for (name, stg) in benchmarks::all() {
        let Ok(sg) = derive(&stg, &DeriveOptions::default()) else {
            continue;
        };
        let Ok(out) = modular_resolve(&sg, &CscSolveOptions::default()) else {
            continue;
        };
        let Ok(functions) = modsyn::derive_logic(&out.graph) else {
            continue;
        };
        let Ok((shared, _)) = modsyn::derive_logic_shared(&out.graph) else {
            continue;
        };
        let so_terms: usize = functions.iter().map(|f| f.sop.cover().cube_count()).sum();
        let so_lits: usize = functions.iter().map(|f| f.literals).sum();
        println!(
            "{:<16} {:>10} {:>12} {:>12} {:>10}",
            name,
            so_terms,
            shared.term_count(),
            so_lits,
            shared.input_literal_count()
        );
    }

    println!(
        "\nA3: assignment extraction — SAT first-model vs BDD minimum-excitation (literals)\n"
    );
    println!(
        "{:<16} {:>10} {:>14} {:>8}",
        "STG", "sat-pick", "bdd-min-area", "delta"
    );
    let mut a3_records: Vec<Json> = Vec::new();
    for (name, stg) in benchmarks::all() {
        let a = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular));
        let b = synthesize(&stg, &SynthesisOptions::for_method(Method::ModularMinArea));
        if let (Ok(a), Ok(b)) = (a, b) {
            let delta = b.literals as i64 - a.literals as i64;
            println!(
                "{:<16} {:>10} {:>14} {:>+8}",
                name, a.literals, b.literals, delta
            );
            a3_records.push(Json::obj([
                ("benchmark", Json::from(name)),
                ("sat_pick_literals", Json::from(a.literals)),
                ("bdd_min_area_literals", Json::from(b.literals)),
                ("delta", Json::from(delta)),
            ]));
        }
    }

    let json = Json::obj([
        ("version", Json::from(1u64)),
        ("a1_decomposition", Json::Arr(a1_records)),
        ("a3_assignment_extraction", Json::Arr(a3_records)),
    ]);
    match std::fs::write("BENCH_ablation.json", json.pretty()) {
        Ok(()) => println!("\nwrote BENCH_ablation.json"),
        Err(e) => eprintln!("error: cannot write BENCH_ablation.json: {e}"),
    }
}
