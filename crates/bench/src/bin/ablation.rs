//! Ablation studies (experiments A1/A2/A3, not tabulated in the paper).
//!
//! * A1 — decomposition: formula sizes of the modular flow vs the direct
//!   encoding across every benchmark.
//! * A2 — SAT engine: conflict-driven learning vs chronological
//!   branch-and-bound, and branching heuristics, on the direct encodings.
//! * A3 — assignment extraction: SAT's first model vs the BDD's
//!   minimum-excitation model (the paper conclusion's area refinement).
//!
//! Run with: `cargo run -p modsyn-bench --release --bin ablation [--jobs N]`
//!
//! `--jobs N` fans the per-benchmark measurements of A1 and A3 over N
//! worker threads (the print order is unchanged — results are joined in
//! input order).
//!
//! The A1 (formula sizes) and A3 (assignment extraction) measurements are
//! also written as machine-readable records to `BENCH_ablation.json`.

use modsyn::{encode_csc, modular_resolve, synthesize, CscSolveOptions, Method, SynthesisOptions};
use modsyn_obs::Json;
use modsyn_par::{par_map, unwrap_or_resume};
use modsyn_sat::{Heuristic, Outcome, Solver, SolverOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn parse_jobs() -> usize {
    let mut jobs = 1;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            jobs = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&j| j >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(1);
                });
        } else {
            eprintln!("usage: ablation [--jobs N] (got {arg:?})");
            std::process::exit(1);
        }
    }
    jobs
}

fn main() {
    let jobs = parse_jobs();
    let all = benchmarks::all();

    let mut a1_records: Vec<Json> = Vec::new();
    println!("A1: decomposition ablation — largest SAT instance solved\n");
    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "STG", "modular (cls)", "direct (cls)", "ratio"
    );
    let a1_measured: Vec<(Option<usize>, usize)> = par_map(jobs, &all, |_, (_, stg)| {
        let sg = derive(stg, &DeriveOptions::default()).expect("derives");
        let analysis = sg.csc_analysis();
        let direct = encode_csc(&sg, &analysis, analysis.lower_bound.max(1));
        let largest = modular_resolve(&sg, &CscSolveOptions::default())
            .ok()
            .and_then(|o| o.formulas.iter().map(|f| f.clauses).max());
        (largest, direct.formula.clause_count())
    })
    .into_iter()
    .map(unwrap_or_resume)
    .collect();
    for ((name, _), (largest, direct_clauses)) in all.iter().zip(a1_measured) {
        let name = *name;
        match largest {
            Some(c) => {
                let ratio = direct_clauses as f64 / c.max(1) as f64;
                println!("{name:<16} {c:>14} {direct_clauses:>14} {ratio:>7.1}x");
                a1_records.push(Json::obj([
                    ("benchmark", Json::from(name)),
                    ("modular_largest_clauses", Json::from(c)),
                    ("direct_clauses", Json::from(direct_clauses)),
                    ("ratio", Json::from(ratio)),
                ]));
            }
            None => {
                println!("{name:<16} {:>14} {direct_clauses:>14}", "-");
                a1_records.push(Json::obj([
                    ("benchmark", Json::from(name)),
                    ("modular_largest_clauses", Json::Null),
                    ("direct_clauses", Json::from(direct_clauses)),
                ]));
            }
        }
    }

    println!("\nA2: SAT engine ablation on direct encodings (backtracks to verdict, limit 50k)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "STG", "cdcl", "chrono-jw", "chrono-first"
    );
    for name in ["mmu1", "vbe4a", "pa", "wrdata", "nouse", "vbe-ex2"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let analysis = sg.csc_analysis();
        let m = analysis.lower_bound.max(1);
        let encoding = encode_csc(&sg, &analysis, m);
        let mut cells = Vec::new();
        for (learning, heuristic) in [
            (true, Heuristic::Activity),
            (false, Heuristic::JeroslowWang),
            (false, Heuristic::FirstUnassigned),
        ] {
            let mut solver = Solver::new(
                &encoding.formula,
                SolverOptions {
                    heuristic,
                    learning,
                    max_backtracks: Some(50_000),
                    max_decisions: None,
                },
            );
            let outcome = solver.solve();
            let stats = solver.stats();
            cells.push(match outcome {
                Outcome::Satisfiable(_) => format!("{}", stats.backtracks),
                Outcome::Unsatisfiable => format!("{} (unsat)", stats.backtracks),
                _ => "limit".to_string(),
            });
        }
        println!(
            "{:<16} {:>10} {:>12} {:>12}",
            name, cells[0], cells[1], cells[2]
        );
    }

    println!("\nA4: PLA sharing — per-output covers vs shared product terms\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "STG", "so-terms", "shared-terms", "so-lits", "shared-lits"
    );
    for (name, stg) in benchmarks::all() {
        let Ok(sg) = derive(&stg, &DeriveOptions::default()) else {
            continue;
        };
        let Ok(out) = modular_resolve(&sg, &CscSolveOptions::default()) else {
            continue;
        };
        let Ok(functions) = modsyn::derive_logic(&out.graph) else {
            continue;
        };
        let Ok((shared, _)) = modsyn::derive_logic_shared(&out.graph) else {
            continue;
        };
        let so_terms: usize = functions.iter().map(|f| f.sop.cover().cube_count()).sum();
        let so_lits: usize = functions.iter().map(|f| f.literals).sum();
        println!(
            "{:<16} {:>10} {:>12} {:>12} {:>10}",
            name,
            so_terms,
            shared.term_count(),
            so_lits,
            shared.input_literal_count()
        );
    }

    println!(
        "\nA3: assignment extraction — SAT first-model vs BDD minimum-excitation (literals)\n"
    );
    println!(
        "{:<16} {:>10} {:>14} {:>8}",
        "STG", "sat-pick", "bdd-min-area", "delta"
    );
    let mut a3_records: Vec<Json> = Vec::new();
    let a3_measured: Vec<Option<(usize, usize)>> = par_map(jobs, &all, |_, (_, stg)| {
        let a = synthesize(stg, &SynthesisOptions::for_method(Method::Modular));
        let b = synthesize(stg, &SynthesisOptions::for_method(Method::ModularMinArea));
        match (a, b) {
            (Ok(a), Ok(b)) => Some((a.literals, b.literals)),
            _ => None,
        }
    })
    .into_iter()
    .map(unwrap_or_resume)
    .collect();
    for ((name, _), measured) in all.iter().zip(a3_measured) {
        let Some((sat_pick, bdd_min)) = measured else {
            continue;
        };
        let name = *name;
        let delta = bdd_min as i64 - sat_pick as i64;
        println!("{name:<16} {sat_pick:>10} {bdd_min:>14} {delta:>+8}");
        a3_records.push(Json::obj([
            ("benchmark", Json::from(name)),
            ("sat_pick_literals", Json::from(sat_pick)),
            ("bdd_min_area_literals", Json::from(bdd_min)),
            ("delta", Json::from(delta)),
        ]));
    }

    let json = Json::obj([
        ("version", Json::from(1u64)),
        ("a1_decomposition", Json::Arr(a1_records)),
        ("a3_assignment_extraction", Json::Arr(a3_records)),
    ]);
    match std::fs::write("BENCH_ablation.json", json.pretty()) {
        Ok(()) => println!("\nwrote BENCH_ablation.json"),
        Err(e) => eprintln!("error: cannot write BENCH_ablation.json: {e}"),
    }
}
