//! `corpus` — sweep the compositional benchmark corpus and write
//! `BENCH_corpus.json`.
//!
//! ```text
//! corpus [--start S] [--count N] [--jobs N] [--out FILE]
//! ```
//!
//! Evaluates seeds `S..S+N` of the `modsyn-corpus` stream (composed
//! in-theory cases plus asymmetric-choice probes) through every applicable
//! synthesis method, enforcing the three-valued contract: every in-theory
//! case must be oracle-certified by the modular flow, every beyond-theory
//! probe must draw a typed class rejection from the theory-scoped
//! comparators, and anything else — a panic, an untyped error, an
//! oracle-refused result, a `.g` round-trip mismatch — is a violation.
//!
//! All counted fields in the output are deterministic (seeded generation,
//! deterministic solver; pooled runs join in seed order), so the document
//! is exact-comparable against `BENCH_corpus.baseline.json` by
//! `benchguard --corpus-only`. Wall clocks are informational.
//!
//! Exit code 0 when every case satisfies the contract, 1 otherwise.

use std::process::ExitCode;

use modsyn_bench::corpus::{corpus_json, run_corpus};
use modsyn_corpus::EvalOptions;

struct Args {
    start: u64,
    count: u64,
    jobs: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        start: 0,
        count: 1000,
        jobs: 1,
        out: "BENCH_corpus.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--start" => args.start = value("--start")?.parse().map_err(|_| "bad --start")?,
            "--count" => args.count = value("--count")?.parse().map_err(|_| "bad --count")?,
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?,
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err("usage: corpus [--start S] [--count N] [--jobs N] [--out FILE]".into())
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.count == 0 {
        return Err("--count must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let eval = EvalOptions::default();
    eprintln!(
        "corpus: seeds {}..{} on {} job(s)",
        args.start,
        args.start + args.count,
        args.jobs.max(1),
    );
    let run = run_corpus(args.start, args.count, args.jobs, &eval);

    let doc = corpus_json(&run, &eval);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    let violations = run.violations();
    let certified = run
        .reports
        .iter()
        .flat_map(|r| &r.outcomes)
        .filter(|o| o.verdict == modsyn_corpus::Verdict::Certified)
        .count();
    println!(
        "corpus: {} cases ({} in-theory, {} beyond-theory), {certified} certified method runs, \
         {} violations, {:.1}s",
        run.reports.len(),
        run.reports
            .iter()
            .filter(|r| r.expectation == modsyn_corpus::Expectation::InTheory)
            .count(),
        run.reports
            .iter()
            .filter(|r| r.expectation == modsyn_corpus::Expectation::BeyondTheory)
            .count(),
        violations.len(),
        run.wall_s,
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
