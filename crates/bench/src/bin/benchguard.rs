//! `benchguard` — fail CI when `BENCH_table1.json` regresses.
//!
//! ```text
//! benchguard [--current FILE] [--baseline FILE] [--tolerance PCT] [--floor N]
//!            [--incr-current FILE] [--incr-baseline FILE] [--incr-only]
//!            [--corpus-current FILE] [--corpus-baseline FILE] [--corpus-only]
//! ```
//!
//! Compares a freshly generated Table-1 document (default
//! `BENCH_table1.json`) against a committed baseline (default
//! `BENCH_table1.baseline.json`) record by record:
//!
//! * **outcome, literals, final signals, final states** must match the
//!   baseline *exactly* — synthesis is deterministic, so any drift here is
//!   a real behaviour change, not noise;
//! * **solver backtracks** may drift within a tolerance band
//!   (`--tolerance` percent of the baseline, default 10, with an absolute
//!   `--floor`, default 100, so tiny baselines don't fail on ±1) — the
//!   CDCL core's conflict counts are deterministic for a fixed encoding,
//!   so only deliberate heuristic tweaks should move effort, and a
//!   blow-up means a search regression even when the answer is right;
//! * **wall clock** is reported but never gates — CI machines are noisy.
//!
//! Passing any `--incr-*` flag additionally (or, with `--incr-only`,
//! exclusively) guards the incremental-synthesis suite: the current
//! `BENCH_incr.json` is compared against `BENCH_incr.baseline.json` per
//! benchmark, and **every counted field** — the chosen edit, its kind, and
//! the base/total/hit/dirty/changed module counts — must match the
//! baseline *exactly*. The edit chooser and the store's module keys are
//! fully deterministic, so any drift in what was reused is a behaviour
//! change; only the wall clocks are informational.
//!
//! Passing any `--corpus-*` flag additionally (or, with `--corpus-only`,
//! exclusively) guards the corpus sweep: the current `BENCH_corpus.json`
//! is compared against `BENCH_corpus.baseline.json`, and **every counted
//! field** — the totals, the size distribution, the per-tier case counts
//! and the per-method certified/rejection taxonomy — must match the
//! baseline *exactly*; the current run must also have `passed: true` with
//! an empty violations list. The corpus stream and the solver are fully
//! deterministic, so any drift is a behaviour change; only the wall
//! clocks are informational.
//!
//! Passing any `--chaos-*` flag additionally (or, with `--chaos-only`,
//! exclusively) band-checks a chaos certification document (default
//! `BENCH_chaos.json`). Chaos runs are freshly generated, so there is no
//! baseline; instead the document must be internally sound: `passed:
//! true` with no violations, and — when the kill -9 fleet leg ran —
//! exactly one injected kill, at least one supervised restart, journal
//! frames actually replayed, readiness restored inside the replay
//! budget, and the restarted replica certified warm (`warm_after_restart`).
//! Timings inside the budget may drift; the *shape* of recovery may not.
//!
//! Exit code 0 when every record passes, 1 with a per-record report when
//! any fails, 2 on unreadable input.

use std::process::ExitCode;

use modsyn_obs::{parse_json, Json};

struct Args {
    current: String,
    baseline: String,
    tolerance_pct: f64,
    floor: f64,
    incr_current: String,
    incr_baseline: String,
    /// Guard the incremental suite (any `--incr-*` flag arms this).
    incr: bool,
    /// Skip the Table-1 comparison entirely.
    incr_only: bool,
    corpus_current: String,
    corpus_baseline: String,
    /// Guard the corpus sweep (any `--corpus-*` flag arms this).
    corpus: bool,
    /// Skip the Table-1 comparison entirely.
    corpus_only: bool,
    chaos_current: String,
    /// Band-check the chaos document (any `--chaos-*` flag arms this).
    chaos: bool,
    /// Skip the Table-1 comparison entirely.
    chaos_only: bool,
    /// Require the kill -9 fleet leg to be present in the chaos document.
    chaos_fleet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        current: "BENCH_table1.json".to_string(),
        baseline: "BENCH_table1.baseline.json".to_string(),
        tolerance_pct: 10.0,
        floor: 100.0,
        incr_current: "BENCH_incr.json".to_string(),
        incr_baseline: "BENCH_incr.baseline.json".to_string(),
        incr: false,
        incr_only: false,
        corpus_current: "BENCH_corpus.json".to_string(),
        corpus_baseline: "BENCH_corpus.baseline.json".to_string(),
        corpus: false,
        corpus_only: false,
        chaos_current: "BENCH_chaos.json".to_string(),
        chaos: false,
        chaos_only: false,
        chaos_fleet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--current" => args.current = value("--current")?,
            "--baseline" => args.baseline = value("--baseline")?,
            "--tolerance" => {
                args.tolerance_pct = value("--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance value")?;
            }
            "--floor" => {
                args.floor = value("--floor")?.parse().map_err(|_| "bad --floor value")?;
            }
            "--incr-current" => {
                args.incr_current = value("--incr-current")?;
                args.incr = true;
            }
            "--incr-baseline" => {
                args.incr_baseline = value("--incr-baseline")?;
                args.incr = true;
            }
            "--incr-only" => {
                args.incr = true;
                args.incr_only = true;
            }
            "--corpus-current" => {
                args.corpus_current = value("--corpus-current")?;
                args.corpus = true;
            }
            "--corpus-baseline" => {
                args.corpus_baseline = value("--corpus-baseline")?;
                args.corpus = true;
            }
            "--corpus-only" => {
                args.corpus = true;
                args.corpus_only = true;
            }
            "--chaos-current" => {
                args.chaos_current = value("--chaos-current")?;
                args.chaos = true;
            }
            "--chaos-only" => {
                args.chaos = true;
                args.chaos_only = true;
            }
            "--chaos-fleet" => {
                args.chaos = true;
                args.chaos_fleet = true;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: benchguard [--current FILE] [--baseline FILE] [--tolerance PCT] \
                     [--floor N] [--incr-current FILE] [--incr-baseline FILE] [--incr-only] \
                     [--corpus-current FILE] [--corpus-baseline FILE] [--corpus-only] \
                     [--chaos-current FILE] [--chaos-only] [--chaos-fleet]"
                        .to_string(),
                )
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

type RecordKey = (String, String);

/// `(benchmark, method)` → record, from a table document.
fn index(doc: &Json) -> Result<Vec<(RecordKey, &Json)>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document has no records array")?;
    records
        .iter()
        .map(|r| {
            let key = |field: &str| {
                r.get(field)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("record without {field}"))
            };
            Ok(((key("benchmark")?, key("method")?), r))
        })
        .collect()
}

fn num(record: &Json, path: &[&str]) -> Option<f64> {
    let mut node = record;
    for p in path {
        node = node.get(p)?;
    }
    node.as_f64()
}

/// One record pair's verdict: `Ok(wall ratio)` or `Err(reasons)`.
fn compare(base: &Json, cur: &Json, tolerance_pct: f64, floor: f64) -> Result<(), Vec<String>> {
    let mut reasons = Vec::new();

    let outcome = |r: &Json| {
        r.get("outcome")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let (base_outcome, cur_outcome) = (outcome(base), outcome(cur));
    if base_outcome != cur_outcome {
        reasons.push(format!("outcome {base_outcome} -> {cur_outcome}"));
        return Err(reasons); // field-level checks are meaningless now
    }

    // Deterministic fields: exact.
    for field in ["literals", "final_signals", "final_states"] {
        let (b, c) = (num(base, &[field]), num(cur, &[field]));
        if b != c {
            reasons.push(format!("{field} {b:?} -> {c:?}"));
        }
    }

    // Solver effort: banded.
    if let Some(b) = num(base, &["solver", "backtracks"]) {
        let c = num(cur, &["solver", "backtracks"]).unwrap_or(f64::NAN);
        let band = (b * tolerance_pct / 100.0).max(floor);
        if !(c - b).abs().le(&band) {
            reasons.push(format!("solver.backtracks {b} -> {c} (band ±{band:.0})"));
        }
    }

    if reasons.is_empty() {
        Ok(())
    } else {
        Err(reasons)
    }
}

/// Benchmark-name → record, from an incremental (`BENCH_incr.json`) doc.
fn incr_index(doc: &Json) -> Result<Vec<(String, &Json)>, String> {
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("document has no rows array")?;
    rows.iter()
        .map(|r| {
            let name = r
                .get("benchmark")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("row without benchmark")?;
            Ok((name, r))
        })
        .collect()
}

/// One incremental record pair's verdict: every counted field exact.
fn compare_incr(base: &Json, cur: &Json) -> Result<(), Vec<String>> {
    let mut reasons = Vec::new();
    for field in ["edit", "edit_kind"] {
        let text = |r: &Json| {
            r.get(field)
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let (b, c) = (text(base), text(cur));
        if b != c {
            reasons.push(format!("{field} {b:?} -> {c:?}"));
        }
    }
    for field in [
        "base_modules",
        "total_modules",
        "store_hits",
        "dirty_modules",
        "changed_modules",
    ] {
        let (b, c) = (num(base, &[field]), num(cur, &[field]));
        if b != c {
            reasons.push(format!("{field} {b:?} -> {c:?}"));
        }
    }
    if reasons.is_empty() {
        Ok(())
    } else {
        Err(reasons)
    }
}

/// The Table-1 guard. `Ok(record count)` when everything is in band.
fn guard_table(args: &Args) -> Result<usize, usize> {
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return Err(usize::MAX); // unreadable input
        }
    };
    let (base_index, cur_index) = match (index(&baseline), index(&current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return Err(usize::MAX);
        }
    };

    let mut failures = 0usize;
    let mut slowest: Option<(String, f64)> = None;
    for (key, base) in &base_index {
        let Some((_, cur)) = cur_index.iter().find(|(k, _)| k == key) else {
            eprintln!("FAIL {}/{}: record missing from current run", key.0, key.1);
            failures += 1;
            continue;
        };
        match compare(base, cur, args.tolerance_pct, args.floor) {
            Ok(()) => {}
            Err(reasons) => {
                eprintln!("FAIL {}/{}: {}", key.0, key.1, reasons.join("; "));
                failures += 1;
            }
        }
        // Wall clock: informational only.
        if let (Some(b), Some(c)) = (num(base, &["wall_s"]), num(cur, &["wall_s"])) {
            if b > 0.05 {
                let ratio = c / b;
                if slowest.as_ref().is_none_or(|(_, r)| ratio > *r) {
                    slowest = Some((format!("{}/{}", key.0, key.1), ratio));
                }
            }
        }
    }

    if let Some((key, ratio)) = slowest {
        println!("wall-clock (informational): largest ratio {ratio:.2}x at {key}");
    }
    if failures > 0 {
        eprintln!(
            "benchguard: {failures} of {} baseline records regressed",
            base_index.len()
        );
        return Err(failures);
    }
    Ok(base_index.len())
}

/// The incremental-suite guard. `Ok(record count)` when exact everywhere.
fn guard_incr(args: &Args) -> Result<usize, usize> {
    let (baseline, current) = match (load(&args.incr_baseline), load(&args.incr_current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return Err(usize::MAX);
        }
    };
    let (base_index, cur_index) = match (incr_index(&baseline), incr_index(&current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return Err(usize::MAX);
        }
    };

    let mut failures = 0usize;
    let mut slowest: Option<(String, f64)> = None;
    for (name, base) in &base_index {
        let Some((_, cur)) = cur_index.iter().find(|(n, _)| n == name) else {
            eprintln!("FAIL {name}/incr: record missing from current run");
            failures += 1;
            continue;
        };
        if let Err(reasons) = compare_incr(base, cur) {
            eprintln!("FAIL {name}/incr: {}", reasons.join("; "));
            failures += 1;
        }
        if let (Some(b), Some(c)) = (num(base, &["wall_incr_s"]), num(cur, &["wall_incr_s"])) {
            if b > 0.05 {
                let ratio = c / b;
                if slowest.as_ref().is_none_or(|(_, r)| ratio > *r) {
                    slowest = Some((name.clone(), ratio));
                }
            }
        }
    }

    if let Some((name, ratio)) = slowest {
        println!("incr wall-clock (informational): largest ratio {ratio:.2}x at {name}");
    }
    if failures > 0 {
        eprintln!(
            "benchguard: {failures} of {} incremental records regressed",
            base_index.len()
        );
        return Err(failures);
    }
    Ok(base_index.len())
}

/// Exact comparison of one flat section (`totals`, one `sizes` entry, a
/// tier or method record): every numeric field present in either document
/// must match.
fn compare_exact_fields(context: &str, base: &Json, cur: &Json, fields: &[&str]) -> Vec<String> {
    fields
        .iter()
        .filter_map(|field| {
            let (b, c) = (num(base, &[field]), num(cur, &[field]));
            (b != c).then(|| format!("{context}.{field} {b:?} -> {c:?}"))
        })
        .collect()
}

/// The corpus-sweep guard: every counted field exact, `passed` true.
fn guard_corpus(args: &Args) -> Result<usize, usize> {
    let (baseline, current) = match (load(&args.corpus_baseline), load(&args.corpus_current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return Err(usize::MAX);
        }
    };

    let mut reasons: Vec<String> = Vec::new();
    let mut compared = 0usize;

    // The current run must itself be clean, independent of the baseline.
    if current.get("passed").and_then(Json::as_bool) != Some(true) {
        reasons.push("current run has passed != true".to_string());
    }
    if let Some(violations) = current.get("violations").and_then(Json::as_arr) {
        for v in violations {
            reasons.push(format!("current violation: {}", v.as_str().unwrap_or("?")));
        }
    }

    let section = |doc: &Json, name: &str| doc.get(name).cloned().unwrap_or(Json::Null);
    let totals_fields = [
        "cases",
        "in_theory",
        "beyond_theory",
        "method_runs",
        "certified",
        "rejected",
        "violations",
    ];
    reasons.extend(compare_exact_fields(
        "totals",
        &section(&baseline, "totals"),
        &section(&current, "totals"),
        &totals_fields,
    ));
    compared += totals_fields.len();

    for dim in ["signals", "places", "transitions", "states"] {
        let (b, c) = (section(&baseline, "sizes"), section(&current, "sizes"));
        reasons.extend(compare_exact_fields(
            &format!("sizes.{dim}"),
            &b.get(dim).cloned().unwrap_or(Json::Null),
            &c.get(dim).cloned().unwrap_or(Json::Null),
            &["min", "max", "total"],
        ));
        compared += 3;
    }

    // Tiers and methods: match records by their name field; a record
    // present on one side only is itself a failure.
    for (array, key, fields) in [
        ("tiers", "tier", vec!["cases", "in_theory", "beyond_theory"]),
        (
            "methods",
            "method",
            vec!["runs", "certified", "literals_total", "final_signals_total"],
        ),
    ] {
        let rows = |doc: &Json| -> Vec<(String, Json)> {
            doc.get(array)
                .and_then(Json::as_arr)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|r| {
                            r.get(key)
                                .and_then(Json::as_str)
                                .map(|n| (n.to_string(), r.clone()))
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let (base_rows, cur_rows) = (rows(&baseline), rows(&current));
        for (name, base_row) in &base_rows {
            let context = format!("{array}.{name}");
            let Some((_, cur_row)) = cur_rows.iter().find(|(n, _)| n == name) else {
                reasons.push(format!("{context}: missing from current run"));
                continue;
            };
            reasons.extend(compare_exact_fields(&context, base_row, cur_row, &fields));
            compared += fields.len();
            // Method records also pin the full rejection taxonomy.
            if array == "methods" {
                let tags = |row: &Json| -> Vec<(String, f64)> {
                    row.get("rejections")
                        .and_then(Json::as_obj)
                        .map(|o| {
                            o.iter()
                                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                                .collect()
                        })
                        .unwrap_or_default()
                };
                let (bt, ct) = (tags(base_row), tags(cur_row));
                for (tag, b) in &bt {
                    let c = ct.iter().find(|(t, _)| t == tag).map(|(_, n)| *n);
                    if c != Some(*b) {
                        reasons.push(format!("{context}.rejections.{tag} {b} -> {c:?}"));
                    }
                    compared += 1;
                }
                for (tag, c) in &ct {
                    if !bt.iter().any(|(t, _)| t == tag) {
                        reasons.push(format!("{context}.rejections.{tag} absent -> {c}"));
                    }
                }
            }
        }
        for (name, _) in &cur_rows {
            if !base_rows.iter().any(|(n, _)| n == name) {
                reasons.push(format!("{array}.{name}: not in baseline"));
            }
        }
    }

    if let (Some(b), Some(c)) = (num(&baseline, &["wall_s"]), num(&current, &["wall_s"])) {
        if b > 0.05 {
            println!("corpus wall-clock (informational): ratio {:.2}x", c / b);
        }
    }
    if reasons.is_empty() {
        Ok(compared)
    } else {
        for r in &reasons {
            eprintln!("FAIL corpus: {r}");
        }
        eprintln!(
            "benchguard: {} corpus fields regressed against {}",
            reasons.len(),
            args.corpus_baseline
        );
        Err(reasons.len())
    }
}

/// The chaos-certification guard: the document must be internally sound.
///
/// There is no baseline — every chaos run regenerates the document — so
/// this pins the *shape* of a healthy run instead: the run passed with no
/// violations, and the kill -9 fleet leg (when present, or required via
/// `--chaos-fleet`) shows exactly one injected kill, a supervised
/// restart, real journal replay, readiness inside the replay budget and
/// a warm restarted replica. `Ok(checked field count)` when sound.
fn guard_chaos(args: &Args) -> Result<usize, usize> {
    let doc = match load(&args.chaos_current) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return Err(usize::MAX);
        }
    };

    let mut reasons: Vec<String> = Vec::new();
    let mut checked = 0usize;

    if doc.get("passed").and_then(Json::as_bool) != Some(true) {
        reasons.push("chaos run has passed != true".to_string());
    }
    checked += 1;
    if let Some(violations) = doc.get("violations").and_then(Json::as_arr) {
        for v in violations {
            reasons.push(format!("chaos violation: {}", v.as_str().unwrap_or("?")));
        }
    }

    let fleet = doc.get("fleet").cloned().unwrap_or(Json::Null);
    if fleet.as_obj().is_none() {
        if args.chaos_fleet {
            reasons.push("fleet leg missing (run chaosmat with --fleet)".to_string());
        }
    } else {
        let field = |name: &str| num(&fleet, &[name]);
        // A band check: (description, actual, pass-predicate rendered below).
        let mut band = |name: &str, ok: bool, want: &str| {
            checked += 1;
            if !ok {
                reasons.push(format!("fleet.{name} = {:?}, want {want}", field(name)));
            }
        };
        band(
            "replicas",
            field("replicas").is_some_and(|n| n >= 2.0),
            ">= 2",
        );
        band(
            "injected_kills",
            field("injected_kills") == Some(1.0),
            "exactly 1",
        );
        band(
            "victim_restarts",
            field("victim_restarts").is_some_and(|n| n >= 1.0),
            ">= 1",
        );
        band(
            "frames_replayed",
            field("frames_replayed").is_some_and(|n| n >= 1.0),
            ">= 1 (journal must actually replay)",
        );
        band(
            "readyz_wait_ms",
            match (field("readyz_wait_ms"), field("replay_budget_ms")) {
                (Some(wait), Some(budget)) => wait <= budget,
                _ => false,
            },
            "<= replay_budget_ms",
        );
        band(
            "client_rounds",
            field("client_rounds").is_some() && field("client_rounds") == field("items"),
            "== items (every row answered through the kill)",
        );
        checked += 1;
        if fleet.get("warm_after_restart").and_then(Json::as_bool) != Some(true) {
            reasons.push(format!(
                "fleet.warm_after_restart = {:?}, want true (restarted replica must answer warm)",
                fleet.get("warm_after_restart")
            ));
        }
    }

    if reasons.is_empty() {
        Ok(checked)
    } else {
        for r in &reasons {
            eprintln!("FAIL chaos: {r}");
        }
        eprintln!(
            "benchguard: {} chaos checks failed against {}",
            reasons.len(),
            args.chaos_current
        );
        Err(reasons.len())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut unreadable = false;
    let mut failed = false;
    if !args.incr_only && !args.corpus_only && !args.chaos_only {
        match guard_table(&args) {
            Ok(n) => println!(
                "benchguard: {n} records within tolerance ({}% / floor {})",
                args.tolerance_pct, args.floor
            ),
            Err(usize::MAX) => unreadable = true,
            Err(_) => failed = true,
        }
    }
    if args.incr {
        match guard_incr(&args) {
            Ok(n) => println!("benchguard: {n} incremental records exact"),
            Err(usize::MAX) => unreadable = true,
            Err(_) => failed = true,
        }
    }
    if args.corpus {
        match guard_corpus(&args) {
            Ok(n) => println!("benchguard: {n} corpus fields exact"),
            Err(usize::MAX) => unreadable = true,
            Err(_) => failed = true,
        }
    }
    if args.chaos {
        match guard_chaos(&args) {
            Ok(n) => println!("benchguard: {n} chaos checks in band"),
            Err(usize::MAX) => unreadable = true,
            Err(_) => failed = true,
        }
    }
    if unreadable {
        return ExitCode::from(2);
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
