//! `benchguard` — fail CI when `BENCH_table1.json` regresses.
//!
//! ```text
//! benchguard [--current FILE] [--baseline FILE] [--tolerance PCT] [--floor N]
//! ```
//!
//! Compares a freshly generated Table-1 document (default
//! `BENCH_table1.json`) against a committed baseline (default
//! `BENCH_table1.baseline.json`) record by record:
//!
//! * **outcome, literals, final signals, final states** must match the
//!   baseline *exactly* — synthesis is deterministic, so any drift here is
//!   a real behaviour change, not noise;
//! * **solver backtracks** may drift within a tolerance band
//!   (`--tolerance` percent of the baseline, default 25, with an absolute
//!   `--floor`, default 100, so tiny baselines don't fail on ±1) —
//!   heuristic-order tweaks legitimately move effort a little, but a
//!   blow-up means a search regression even when the answer is right;
//! * **wall clock** is reported but never gates — CI machines are noisy.
//!
//! Exit code 0 when every record passes, 1 with a per-record report when
//! any fails, 2 on unreadable input.

use std::process::ExitCode;

use modsyn_obs::{parse_json, Json};

struct Args {
    current: String,
    baseline: String,
    tolerance_pct: f64,
    floor: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        current: "BENCH_table1.json".to_string(),
        baseline: "BENCH_table1.baseline.json".to_string(),
        tolerance_pct: 25.0,
        floor: 100.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--current" => args.current = value("--current")?,
            "--baseline" => args.baseline = value("--baseline")?,
            "--tolerance" => {
                args.tolerance_pct = value("--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance value")?;
            }
            "--floor" => {
                args.floor = value("--floor")?.parse().map_err(|_| "bad --floor value")?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: benchguard [--current FILE] [--baseline FILE] [--tolerance PCT] \
                     [--floor N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

type RecordKey = (String, String);

/// `(benchmark, method)` → record, from a table document.
fn index(doc: &Json) -> Result<Vec<(RecordKey, &Json)>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document has no records array")?;
    records
        .iter()
        .map(|r| {
            let key = |field: &str| {
                r.get(field)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("record without {field}"))
            };
            Ok(((key("benchmark")?, key("method")?), r))
        })
        .collect()
}

fn num(record: &Json, path: &[&str]) -> Option<f64> {
    let mut node = record;
    for p in path {
        node = node.get(p)?;
    }
    node.as_f64()
}

/// One record pair's verdict: `Ok(wall ratio)` or `Err(reasons)`.
fn compare(base: &Json, cur: &Json, tolerance_pct: f64, floor: f64) -> Result<(), Vec<String>> {
    let mut reasons = Vec::new();

    let outcome = |r: &Json| {
        r.get("outcome")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let (base_outcome, cur_outcome) = (outcome(base), outcome(cur));
    if base_outcome != cur_outcome {
        reasons.push(format!("outcome {base_outcome} -> {cur_outcome}"));
        return Err(reasons); // field-level checks are meaningless now
    }

    // Deterministic fields: exact.
    for field in ["literals", "final_signals", "final_states"] {
        let (b, c) = (num(base, &[field]), num(cur, &[field]));
        if b != c {
            reasons.push(format!("{field} {b:?} -> {c:?}"));
        }
    }

    // Solver effort: banded.
    if let Some(b) = num(base, &["solver", "backtracks"]) {
        let c = num(cur, &["solver", "backtracks"]).unwrap_or(f64::NAN);
        let band = (b * tolerance_pct / 100.0).max(floor);
        if !(c - b).abs().le(&band) {
            reasons.push(format!("solver.backtracks {b} -> {c} (band ±{band:.0})"));
        }
    }

    if reasons.is_empty() {
        Ok(())
    } else {
        Err(reasons)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let (base_index, cur_index) = match (index(&baseline), index(&current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut slowest: Option<(String, f64)> = None;
    for (key, base) in &base_index {
        let Some((_, cur)) = cur_index.iter().find(|(k, _)| k == key) else {
            eprintln!("FAIL {}/{}: record missing from current run", key.0, key.1);
            failures += 1;
            continue;
        };
        match compare(base, cur, args.tolerance_pct, args.floor) {
            Ok(()) => {}
            Err(reasons) => {
                eprintln!("FAIL {}/{}: {}", key.0, key.1, reasons.join("; "));
                failures += 1;
            }
        }
        // Wall clock: informational only.
        if let (Some(b), Some(c)) = (num(base, &["wall_s"]), num(cur, &["wall_s"])) {
            if b > 0.05 {
                let ratio = c / b;
                if slowest.as_ref().is_none_or(|(_, r)| ratio > *r) {
                    slowest = Some((format!("{}/{}", key.0, key.1), ratio));
                }
            }
        }
    }

    if let Some((key, ratio)) = slowest {
        println!("wall-clock (informational): largest ratio {ratio:.2}x at {key}");
    }
    if failures > 0 {
        eprintln!(
            "benchguard: {failures} of {} baseline records regressed",
            base_index.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "benchguard: {} records within tolerance ({}% / floor {})",
        base_index.len(),
        args.tolerance_pct,
        args.floor
    );
    ExitCode::SUCCESS
}
