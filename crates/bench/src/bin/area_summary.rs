//! Regenerates the paper's average-area claim (experiment E3).
//!
//! The paper: "On average, our modular partitioning algorithm reduces the
//! two-level implementation area by 12% than that of the Vanbekbergen's
//! direct synthesis method. As compared to Lavagno et al.'s algorithm, we
//! obtained an average area improvement of 9%."
//!
//! Run with: `cargo run -p modsyn-bench --release --bin area_summary [limit]`

use modsyn_bench::{run_table, Measured, TABLE1_BACKTRACK_LIMIT};

fn improvement(
    rows: &[(&str, Measured, Measured, Measured)],
    pick: impl Fn(&(&str, Measured, Measured, Measured)) -> (Option<usize>, Option<usize>),
) -> (f64, usize) {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for row in rows {
        let (ours, theirs) = pick(row);
        if let (Some(a), Some(b)) = (ours, theirs) {
            if b > 0 {
                total += 1.0 - a as f64 / b as f64;
                counted += 1;
            }
        }
    }
    (
        if counted > 0 {
            100.0 * total / counted as f64
        } else {
            0.0
        },
        counted,
    )
}

fn main() {
    let limit: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(TABLE1_BACKTRACK_LIMIT);
    let rows = run_table(limit);

    println!("two-level area (literals of the prime-irredundant cover):\n");
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "STG", "modular", "direct", "lavagno"
    );
    for (name, m, d, l) in &rows {
        println!(
            "{:<16} {:>8} {:>8} {:>8}",
            name,
            m.literals().map_or("-".into(), |v| v.to_string()),
            d.literals().map_or("-".into(), |v| v.to_string()),
            l.literals().map_or("-".into(), |v| v.to_string()),
        );
    }

    let (vs_direct, n_direct) = improvement(&rows, |(_, m, d, _)| (m.literals(), d.literals()));
    let (vs_lavagno, n_lavagno) = improvement(&rows, |(_, m, _, l)| (m.literals(), l.literals()));
    println!(
        "\naverage area improvement vs direct:  {vs_direct:+.1}% over {n_direct} comparable rows (paper: 12%)"
    );
    println!(
        "average area improvement vs lavagno: {vs_lavagno:+.1}% over {n_lavagno} comparable rows (paper: 9%)"
    );
}
