//! `chaosmat` — chaos certification across the synthesis stack.
//!
//! ```text
//! chaosmat [--small] [--seed N] [--jobs N] [--out FILE]
//!          [--corpus N] [--corpus-only] [--fleet]
//! ```
//!
//! Runs the Table-1 suite (all 23 rows, or the small subset with
//! `--small`) through a matrix of seeded fault plans and asserts the
//! stack's robustness invariants, certifying every successful result
//! against the independent `modsyn-check` oracle:
//!
//! * **pipeline** — for each fault plan (`sat.abort` bursts, conflict
//!   storms), the supervised retry ladder must still produce a certified
//!   result on every row, and that result must be byte-identical to the
//!   fault-free baseline; once the plan's fault budget is disabled
//!   ("faults clear"), a plain re-run must succeed too.
//! * **pool** — every row synthesised as jobs on a `WorkerPool` armed
//!   with worker-panic faults must, after supervised resubmission,
//!   produce results byte-identical to the serial baseline, and the pool
//!   must stay usable throughout.
//! * **serving** — a `modsynd` server armed with svc I/O faults (accept
//!   drops, torn reads/writes, slow peers), cache eviction storms and SAT
//!   aborts must, against the backoff client, eventually serve every row
//!   a certified `200` byte-identical to a clean server's response.
//!
//! * **fleet** (`--fleet`) — the `kill -9` certification: a supervised
//!   fleet of 3 real `modsynd` processes, each with its own crash-safe
//!   `--durable` store, serves the whole suite through the consistent-hash
//!   failover router while a seeded `fleet.replica-kill` fault SIGKILLs
//!   the busiest replica mid-traffic. Every row must still draw its
//!   byte-identical certified response (failover absorbs the kill), and
//!   the restarted replica must come back *warm* within the replay
//!   budget: `/readyz` green, journal frames replayed, and a re-request
//!   of its work answered as a cache hit.
//!
//! With `--corpus N` a fourth leg runs the first `N` seeds of the
//! compositional corpus stream through the pipeline fault plans: each
//! case's fault-free modular baseline (a certified result, or a typed
//! rejection for probes the flow declines) must be reproduced exactly by
//! the retry ladder under injected faults, and again once the faults
//! clear. `--corpus-only` skips the Table-1 legs.
//!
//! Every injection decision derives from `--seed`, so a failing run
//! reproduces exactly. The summary is written to `BENCH_chaos.json`
//! (or `--out FILE`); any invariant violation exits non-zero.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use modsyn::{synthesize, synthesize_with_retry, RetryPolicy, SynthesisOptions, SynthesisReport};
use modsyn_bench::{small_rows, PaperRow, PAPER_TABLE1, TABLE1_BACKTRACK_LIMIT};
use modsyn_corpus::{corpus_case, Expectation};
use modsyn_fault::{fnv1a64, site, FaultPlan, FaultRule, Faults};
use modsyn_fleet::{
    sibling_binary, wait_for_200, FleetConfig, FleetEvent, FleetRouter, Supervisor,
};
use modsyn_obs::{Json, Tracer};
use modsyn_par::WorkerPool;
use modsyn_sat::SolverOptions;
use modsyn_stg::{benchmarks, write_g, Stg};
use modsyn_svc::{client, Metrics, Server, ServerConfig};

struct Args {
    small: bool,
    seed: u64,
    jobs: usize,
    out: String,
    corpus: u64,
    corpus_only: bool,
    fleet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        small: false,
        seed: 0x000c_4a05,
        jobs: 4,
        out: "BENCH_chaos.json".to_string(),
        corpus: 0,
        corpus_only: false,
        fleet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--small" => args.small = true,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|_| "bad --seed value")?,
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs value")?,
            "--out" => args.out = value("--out")?,
            "--corpus" => {
                args.corpus = value("--corpus")?
                    .parse()
                    .map_err(|_| "bad --corpus value")?;
            }
            "--corpus-only" => args.corpus_only = true,
            "--fleet" => args.fleet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: chaosmat [--small] [--seed N] [--jobs N] [--out FILE] \
                            [--corpus N] [--corpus-only] [--fleet]"
                        .into(),
                )
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    if args.corpus_only && args.corpus == 0 {
        args.corpus = 8;
    }
    if args.fleet && args.corpus_only {
        return Err("--fleet needs the Table-1 legs (drop --corpus-only)".to_string());
    }
    Ok(args)
}

/// A canonical byte-comparable rendering of a synthesis result: every
/// field the oracle certifies, none of the timing noise. Two runs agree
/// iff their fingerprints are identical strings.
fn fingerprint(r: &SynthesisReport) -> String {
    let mut s = format!(
        "{}|{}|{}|{}|{}|{}",
        r.benchmark,
        r.method,
        r.final_states,
        r.final_signals,
        r.literals,
        r.inserted.join(",")
    );
    for f in &r.functions {
        s.push_str(&format!("|{}={}", f.name, f.sop));
    }
    s
}

/// Certifies `report` against the independent oracle, including
/// observation equivalence to the re-derived specification graph.
fn certify(stg: &Stg, report: &SynthesisReport) -> Result<(), String> {
    let spec =
        modsyn_sg::derive(stg, &modsyn_sg::DeriveOptions::default()).map_err(|e| e.to_string())?;
    modsyn::certify_report(Some(&spec), report).map_err(|e| e.to_string())
}

fn table1_options(faults: Faults) -> SynthesisOptions {
    SynthesisOptions {
        solver: SolverOptions {
            max_backtracks: Some(TABLE1_BACKTRACK_LIMIT),
            ..SolverOptions::default()
        },
        faults,
        ..SynthesisOptions::default()
    }
}

struct Violations(Vec<String>);

impl Violations {
    fn check(&mut self, ok: bool, context: &str) {
        if !ok {
            eprintln!("VIOLATION: {context}");
            self.0.push(context.to_string());
        }
    }
}

/// The pipeline-leg fault plans: name → rule spec. Budgets are finite so
/// every plan's faults eventually clear within the retry ladder.
const PIPELINE_PLANS: [(&str, &str); 2] = [
    ("sat-abort", "sat.abort*2"),
    ("sat-storm", "sat.conflict-storm*3"),
];

/// The serving-leg chaos plan: svc I/O tears, a slow peer, cache eviction
/// storms and SAT aborts, all budgeted so the service converges.
const SERVING_PLAN: &str = "svc.accept*2@1/2,svc.read-torn*2@1/2,svc.write-torn*2@1/2,\
svc.slow-peer*2~25,cache.evict-storm*3@1/2,sat.abort*3@1/2";

fn pipeline_leg(
    rows: &[PaperRow],
    baselines: &[(String, Stg, String)],
    seed: u64,
    violations: &mut Violations,
) -> Json {
    let mut plans_json = Vec::new();
    for (plan_name, spec) in PIPELINE_PLANS {
        let mut injected = 0u64;
        let mut escalated_rows = 0usize;
        for (row, (name, stg, baseline)) in rows.iter().zip(baselines) {
            assert_eq!(row.name, name.as_str());
            let plan = FaultPlan::parse(plan_name, spec, seed ^ fnv1a64(name.as_bytes()))
                .expect("static plan spec parses");
            let faults = plan.arm();
            let options = table1_options(faults.clone());
            match synthesize_with_retry(stg, &options, &RetryPolicy::default()) {
                Ok(out) => {
                    if !out.attempts.is_empty() {
                        escalated_rows += 1;
                    }
                    violations.check(
                        certify(stg, &out.report).is_ok(),
                        &format!("{plan_name}/{name}: ladder result failed certification"),
                    );
                    violations.check(
                        fingerprint(&out.report) == *baseline,
                        &format!("{plan_name}/{name}: ladder result differs from baseline"),
                    );
                }
                Err(e) => violations.check(
                    false,
                    &format!("{plan_name}/{name}: ladder exhausted or failed: {e}"),
                ),
            }
            injected += faults.total_injected();
            // Faults clear: with the plan disabled a plain run must
            // succeed and certify, no ladder needed.
            faults.set_enabled(false);
            match synthesize(stg, &table1_options(faults.clone())) {
                Ok(report) => violations.check(
                    certify(stg, &report).is_ok() && fingerprint(&report) == *baseline,
                    &format!("{plan_name}/{name}: post-clear run differs or fails certification"),
                ),
                Err(e) => {
                    violations.check(false, &format!("{plan_name}/{name}: post-clear run: {e}"));
                }
            }
        }
        eprintln!(
            "chaosmat: pipeline plan {plan_name}: {} rows, {injected} faults injected, \
             {escalated_rows} rows escalated",
            rows.len()
        );
        plans_json.push(Json::obj([
            ("plan", Json::from(plan_name)),
            ("spec", Json::from(spec)),
            ("rows", Json::from(rows.len())),
            ("injected_faults", Json::from(injected)),
            ("escalated_rows", Json::from(escalated_rows)),
        ]));
    }
    Json::Arr(plans_json)
}

/// The corpus leg: corpus-stream cases under the pipeline fault plans.
/// The fault-free modular baseline — certified result or typed rejection
/// — must be reproduced exactly by the retry ladder under faults, and
/// again once the plan's budget clears.
fn corpus_leg(count: u64, seed: u64, violations: &mut Violations) -> Json {
    let mut injected = 0u64;
    let mut escalated = 0usize;
    let mut certified = 0usize;
    let mut rejected = 0usize;
    for case_seed in 0..count {
        let (stg, _) = corpus_case(case_seed);
        let name = stg.name().to_string();
        let baseline = synthesize(&stg, &table1_options(Faults::none()));
        match &baseline {
            Ok(report) => {
                certified += 1;
                violations.check(
                    certify(&stg, report).is_ok(),
                    &format!("corpus/{name}: fault-free baseline failed certification"),
                );
            }
            Err(_) => rejected += 1,
        }
        for (plan_name, spec) in PIPELINE_PLANS {
            let plan = FaultPlan::parse(plan_name, spec, seed ^ fnv1a64(name.as_bytes()))
                .expect("static plan spec parses");
            let faults = plan.arm();
            let options = table1_options(faults.clone());
            let chaos = synthesize_with_retry(&stg, &options, &RetryPolicy::default());
            match (&baseline, chaos) {
                (Ok(base), Ok(out)) => {
                    if !out.attempts.is_empty() {
                        escalated += 1;
                    }
                    violations.check(
                        fingerprint(&out.report) == fingerprint(base),
                        &format!("corpus/{plan_name}/{name}: ladder result differs from baseline"),
                    );
                    violations.check(
                        certify(&stg, &out.report).is_ok(),
                        &format!("corpus/{plan_name}/{name}: ladder result failed certification"),
                    );
                }
                // A case the flow rejects fault-free must keep drawing the
                // same typed rejection under injected faults — chaos must
                // never flip a rejection into a panic or a wrong answer.
                (Err(base), Err(e)) => violations.check(
                    std::mem::discriminant(base) == std::mem::discriminant(&e),
                    &format!("corpus/{plan_name}/{name}: rejection changed type under faults: {e}"),
                ),
                (Ok(_), Err(e)) => violations.check(
                    false,
                    &format!("corpus/{plan_name}/{name}: ladder exhausted or failed: {e}"),
                ),
                (Err(_), Ok(_)) => violations.check(
                    false,
                    &format!("corpus/{plan_name}/{name}: faults turned a rejection into success"),
                ),
            }
            injected += faults.total_injected();
            faults.set_enabled(false);
            let cleared = synthesize(&stg, &table1_options(faults.clone()));
            let agrees = match (&baseline, &cleared) {
                (Ok(a), Ok(b)) => fingerprint(a) == fingerprint(b),
                (Err(a), Err(b)) => std::mem::discriminant(a) == std::mem::discriminant(b),
                _ => false,
            };
            violations.check(
                agrees,
                &format!("corpus/{plan_name}/{name}: post-clear run differs from baseline"),
            );
        }
    }
    eprintln!(
        "chaosmat: corpus leg: {count} cases ({certified} certified, {rejected} rejected), \
         {injected} faults injected, {escalated} ladder escalations",
    );
    Json::obj([
        ("cases", Json::from(count)),
        ("certified", Json::from(certified)),
        ("rejected", Json::from(rejected)),
        ("injected_faults", Json::from(injected)),
        ("escalated", Json::from(escalated)),
    ])
}

fn pool_leg(
    baselines: &[(String, Stg, String)],
    seed: u64,
    jobs: usize,
    violations: &mut Violations,
) -> Json {
    let plan = FaultPlan::parse("pool-panic", "pool.enqueue*2,pool.run*2,pool.drain*1", seed)
        .expect("static plan spec parses");
    let faults = plan.arm();
    let pool = WorkerPool::with_tracer_and_faults(jobs, Tracer::disabled(), faults.clone());
    let mut resubmissions = 0u64;
    for (name, stg, baseline) in baselines {
        let mut tries = 0;
        let result = loop {
            tries += 1;
            let stg = stg.clone();
            let options = table1_options(Faults::none());
            let handle = pool.submit(&format!("chaos:{name}"), move || {
                synthesize(&stg, &options).map(|r| fingerprint(&r))
            });
            match handle.join() {
                Ok(r) => break Some(r),
                // Contained worker panic or vanished job: resubmit, the
                // supervision the pool's consumers owe their callers.
                Err(_) if tries < 10 => {
                    resubmissions += 1;
                    continue;
                }
                Err(_) => break None,
            }
        };
        match result {
            Some(Ok(fp)) => violations.check(
                fp == *baseline,
                &format!("pool/{name}: jobs={jobs} result differs from serial baseline"),
            ),
            Some(Err(e)) => violations.check(false, &format!("pool/{name}: synthesis failed: {e}")),
            None => violations.check(false, &format!("pool/{name}: job kept vanishing")),
        }
    }
    // The pool must still be usable after every injected panic.
    let alive = pool.submit("chaos:probe", || 21 * 2).join();
    violations.check(
        alive == Ok(42),
        "pool: not usable after injected worker panics",
    );
    eprintln!(
        "chaosmat: pool leg: {} rows on {jobs} workers, {} faults injected, {} resubmissions",
        baselines.len(),
        faults.total_injected(),
        resubmissions,
    );
    Json::obj([
        ("jobs", Json::from(jobs)),
        ("rows", Json::from(baselines.len())),
        ("injected_faults", Json::from(faults.total_injected())),
        ("resubmissions", Json::from(resubmissions)),
    ])
}

fn start_server(config: ServerConfig) -> std::io::Result<(SocketAddr, impl FnOnce())> {
    let server = Server::bind(config, Tracer::disabled())?;
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    Ok((addr, move || {
        handle.shutdown();
        let _ = thread.join();
    }))
}

fn serving_leg(
    baselines: &[(String, Stg, String)],
    seed: u64,
    jobs: usize,
    violations: &mut Violations,
) -> Json {
    let timeout = Duration::from_secs(120);
    let server_config = |faults: Faults| ServerConfig {
        jobs,
        queue_capacity: baselines.len().max(64),
        backtrack_limit: Some(TABLE1_BACKTRACK_LIMIT),
        faults,
        ..ServerConfig::default()
    };

    // Clean pass: the reference bodies every chaos response must match.
    let (addr, stop) = match start_server(server_config(Faults::none())) {
        Ok(s) => s,
        Err(e) => {
            violations.check(false, &format!("serving: cannot bind clean server: {e}"));
            return Json::Null;
        }
    };
    let mut reference = Vec::with_capacity(baselines.len());
    for (name, stg, _) in baselines {
        let body = write_g(stg);
        match client::request(
            addr,
            "POST",
            "/synth?method=modular",
            body.as_bytes(),
            timeout,
        ) {
            Ok(r) if r.status == 200 && r.text().contains("\"certified\":true") => {
                reference.push(r.body);
            }
            Ok(r) => {
                violations.check(
                    false,
                    &format!("serving/{name}: clean server: {}", r.status),
                );
                reference.push(Vec::new());
            }
            Err(e) => {
                violations.check(false, &format!("serving/{name}: clean server: {e}"));
                reference.push(Vec::new());
            }
        }
    }
    stop();

    // Chaos pass: armed server, backoff client, eventual byte-identical
    // certified 200s.
    let plan = FaultPlan::parse("svc-io", SERVING_PLAN, seed).expect("static plan spec parses");
    let faults = plan.arm();
    let (addr, stop) = match start_server(server_config(faults.clone())) {
        Ok(s) => s,
        Err(e) => {
            violations.check(false, &format!("serving: cannot bind chaos server: {e}"));
            return Json::Null;
        }
    };
    let mut rounds_total = 0u64;
    for ((name, stg, _), expected) in baselines.iter().zip(&reference) {
        let body = write_g(stg);
        let policy = client::BackoffPolicy {
            seed: seed ^ fnv1a64(name.as_bytes()),
            ..client::BackoffPolicy::default()
        };
        let mut response = None;
        for _round in 0..8 {
            rounds_total += 1;
            match client::request_with_backoff(
                addr,
                "POST",
                "/synth?method=modular",
                body.as_bytes(),
                timeout,
                &policy,
            ) {
                Ok(r) if r.status == 200 => {
                    response = Some(r);
                    break;
                }
                // 5xx (shed, breaker, injected abort) or a torn/dropped
                // connection: the fault budget is finite, go again.
                Ok(_) | Err(_) => continue,
            }
        }
        match response {
            Some(r) => {
                violations.check(
                    r.text().contains("\"certified\":true"),
                    &format!("serving/{name}: chaos 200 is not certified"),
                );
                violations.check(
                    r.body == *expected,
                    &format!("serving/{name}: chaos body differs from clean body"),
                );
            }
            None => violations.check(
                false,
                &format!("serving/{name}: no 200 after faults cleared"),
            ),
        }
    }
    let metrics_text = client::request(addr, "GET", "/metrics", b"", timeout)
        .map(|r| r.text())
        .unwrap_or_default();
    let injected_metric =
        Metrics::parse_line(&metrics_text, "modsynd_injected_faults_total").unwrap_or(0);
    stop();
    violations.check(
        faults.total_injected() > 0,
        "serving: chaos plan never injected a fault",
    );
    eprintln!(
        "chaosmat: serving leg: {} rows, {} faults injected ({} visible in /metrics), \
         {rounds_total} client rounds",
        baselines.len(),
        faults.total_injected(),
        injected_metric,
    );
    Json::obj([
        ("rows", Json::from(baselines.len())),
        ("plan", Json::from(SERVING_PLAN)),
        ("injected_faults", Json::from(faults.total_injected())),
        ("injected_faults_metric", Json::from(injected_metric)),
        ("client_rounds", Json::from(rounds_total)),
    ])
}

/// One request the fleet leg must serve byte-identically to a clean
/// single server.
struct FleetItem {
    name: String,
    path: &'static str,
    body: String,
    digest: u64,
    status: u16,
    expected: Vec<u8>,
}

/// How long a `kill -9`'d replica may take to restart, replay its journal
/// and report ready again.
const FLEET_REPLAY_BUDGET: Duration = Duration::from_secs(30);

/// The `kill -9` certification leg: a supervised fleet of real `modsynd`
/// processes with per-replica durable stores serves the whole work set
/// through the rendezvous failover router while a seeded
/// `fleet.replica-kill` fault SIGKILLs the first item's primary replica
/// mid-traffic. Asserts (a) every item still draws its byte-identical
/// clean response, (b) the victim restarts and turns ready within
/// [`FLEET_REPLAY_BUDGET`], and (c) the restart is *warm*: journal frames
/// replayed and the victim's own work answered as a cache hit.
fn fleet_leg(
    baselines: &[(String, Stg, String)],
    corpus_count: u64,
    seed: u64,
    jobs: usize,
    violations: &mut Violations,
) -> Json {
    let timeout = Duration::from_secs(120);
    let mut items: Vec<FleetItem> = Vec::new();
    for (name, stg, _) in baselines {
        let body = write_g(stg);
        items.push(FleetItem {
            name: name.clone(),
            path: "/synth?method=modular",
            digest: fnv1a64(body.as_bytes()),
            body,
            status: 200,
            expected: Vec::new(),
        });
    }
    for case_seed in 0..corpus_count {
        let (stg, expectation) = corpus_case(case_seed);
        let body = write_g(&stg);
        // Probes beyond the free-choice theory target the comparator and
        // must keep drawing its typed 422 through the fleet, byte-exact.
        let (path, status) = match expectation {
            Expectation::InTheory => ("/synth?method=modular", 200),
            Expectation::BeyondTheory => ("/synth?method=lavagno", 422),
        };
        items.push(FleetItem {
            name: format!("corpus-{case_seed}"),
            path,
            digest: fnv1a64(body.as_bytes()),
            body,
            status,
            expected: Vec::new(),
        });
    }

    // Reference pass: one clean in-process server defines the expected
    // bytes for every item.
    let (addr, stop) = match start_server(ServerConfig {
        jobs,
        queue_capacity: items.len().max(64),
        backtrack_limit: Some(TABLE1_BACKTRACK_LIMIT),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            violations.check(false, &format!("fleet: cannot bind clean server: {e}"));
            return Json::Null;
        }
    };
    for item in &mut items {
        match client::request(addr, "POST", item.path, item.body.as_bytes(), timeout) {
            Ok(r) if r.status == item.status => item.expected = r.body,
            Ok(r) => violations.check(
                false,
                &format!(
                    "fleet/{}: clean server answered {} (expected {})",
                    item.name, r.status, item.status
                ),
            ),
            Err(e) => violations.check(false, &format!("fleet/{}: clean server: {e}", item.name)),
        }
    }
    stop();

    // The fleet: three real modsynd processes, per-replica durable dirs,
    // a kill fault scheduled for the tick after half the traffic. Each
    // tick probes the kill site once per live replica in index order, so
    // skip(tick * replicas + victim) lands the one budgeted kill exactly
    // on the victim at that tick.
    let modsynd = match sibling_binary("modsynd") {
        Ok(p) => p,
        Err(e) => {
            violations.check(false, &format!("fleet: {e}"));
            return Json::Null;
        }
    };
    let replicas = 3usize;
    let base_port = 21000 + (std::process::id() % 9000) as u16;
    let addrs: Vec<SocketAddr> = (0..replicas)
        .map(|i| {
            format!("127.0.0.1:{}", base_port + i as u16)
                .parse()
                .expect("loopback address parses")
        })
        .collect();
    let router = FleetRouter::new(addrs.clone());
    let victim = addrs
        .iter()
        .position(|a| Some(*a) == router.primary(items[0].digest))
        .unwrap_or(0);
    let kill_tick = (items.len() / 2).max(1);
    let faults = FaultPlan::new("fleet", seed)
        .rule(
            FaultRule::at(site::FLEET_REPLICA_KILL)
                .skip((kill_tick * replicas + victim) as u64)
                .times(1),
        )
        .arm();
    let root = std::env::temp_dir().join(format!("chaosmat-fleet-{}", std::process::id()));
    let config = FleetConfig {
        command: vec![
            modsynd.to_string_lossy().into_owned(),
            "--addr".into(),
            "127.0.0.1:{port}".into(),
            "--access-log".into(),
            "off".into(),
            "--jobs".into(),
            jobs.to_string(),
            "--limit".into(),
            TABLE1_BACKTRACK_LIMIT.to_string(),
            "--durable".into(),
            format!("{}/replica-{{replica}}", root.display()),
            "--checkpoint-every".into(),
            "64".into(),
        ],
        replicas,
        base_port,
        faults: faults.clone(),
        ..FleetConfig::default()
    };
    let mut sup = match Supervisor::start(config) {
        Ok(s) => s,
        Err(e) => {
            violations.check(false, &format!("fleet: cannot start supervisor: {e}"));
            return Json::Null;
        }
    };
    for (i, a) in addrs.iter().enumerate() {
        violations.check(
            wait_for_200(*a, "/readyz", Duration::from_secs(20)),
            &format!("fleet: replica {i} never became ready"),
        );
    }

    // Traffic: one supervision tick per request, so the scheduled kill
    // lands mid-traffic and the supervisor heals while requests continue.
    let mut victim_dead = false;
    let mut failover_items = 0u64;
    let mut rounds_total = 0u64;
    for item in &items {
        let policy = client::BackoffPolicy {
            max_attempts: 3,
            max_total_wait: Duration::from_secs(5),
            seed: seed ^ fnv1a64(item.name.as_bytes()),
            ..client::BackoffPolicy::default()
        };
        if victim_dead && router.primary(item.digest) == Some(addrs[victim]) {
            failover_items += 1;
        }
        let mut response = None;
        for _round in 0..8 {
            rounds_total += 1;
            match router.route(
                item.digest,
                "POST",
                item.path,
                item.body.as_bytes(),
                timeout,
                &policy,
            ) {
                Ok(r) if r.status == item.status => {
                    response = Some(r);
                    break;
                }
                // A replica mid-restart sheds with 503s; the budget is
                // finite, go again.
                Ok(_) | Err(_) => continue,
            }
        }
        match response {
            Some(r) => violations.check(
                r.body == item.expected,
                &format!("fleet/{}: body differs from clean reference", item.name),
            ),
            None => violations.check(
                false,
                &format!("fleet/{}: no {} despite failover", item.name, item.status),
            ),
        }
        for event in sup.tick(Instant::now()) {
            match event {
                FleetEvent::KillInjected { replica, .. } if replica == victim => {
                    eprintln!("chaosmat: fleet: injected kill -9 on replica {replica}");
                    victim_dead = true;
                }
                FleetEvent::Started { replica, .. } if replica == victim => victim_dead = false,
                _ => {}
            }
        }
    }
    violations.check(
        faults.injected_at(site::FLEET_REPLICA_KILL) == 1,
        "fleet: the scheduled replica kill never fired",
    );

    // Recovery: the victim must restart and turn ready within the replay
    // budget…
    let waiting = Instant::now();
    while sup.restarts(victim) == 0 && waiting.elapsed() < FLEET_REPLAY_BUDGET {
        std::thread::sleep(Duration::from_millis(50));
        let _ = sup.tick(Instant::now());
    }
    violations.check(
        sup.restarts(victim) >= 1,
        "fleet: killed replica was never restarted",
    );
    violations.check(
        wait_for_200(addrs[victim], "/readyz", FLEET_REPLAY_BUDGET),
        "fleet: restarted replica not ready within the replay budget",
    );
    let readyz_wait_ms = waiting.elapsed().as_millis() as u64;

    // …and it must be *warm*: the journal replayed, and the item it owned
    // (served and journaled before the kill) answered from cache.
    let metrics_text = client::request(addrs[victim], "GET", "/metrics", b"", timeout)
        .map(|r| r.text())
        .unwrap_or_default();
    let frames_replayed =
        Metrics::parse_line(&metrics_text, "modsynd_recovery_frames_replayed").unwrap_or(0);
    violations.check(
        frames_replayed > 0,
        "fleet: restarted replica replayed no journal frames",
    );
    let mut warm_hit = false;
    match client::request_with_backoff(
        addrs[victim],
        "POST",
        items[0].path,
        items[0].body.as_bytes(),
        timeout,
        &client::BackoffPolicy::default(),
    ) {
        Ok(r) => {
            violations.check(
                r.status == items[0].status && r.body == items[0].expected,
                "fleet: restarted replica's answer differs from the clean reference",
            );
            warm_hit = r.header("x-modsyn-cache") == Some("hit");
            violations.check(
                warm_hit,
                "fleet: restarted replica answered its own work cold (no cache hit)",
            );
        }
        Err(e) => violations.check(false, &format!("fleet: restarted replica unreachable: {e}")),
    }
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    eprintln!(
        "chaosmat: fleet leg: {} items over {replicas} replicas, victim {victim} killed at \
         tick {kill_tick}, {failover_items} items failed over, ready again after {readyz_wait_ms}ms \
         ({frames_replayed} frames replayed), {rounds_total} client rounds",
        items.len(),
    );
    Json::obj([
        ("replicas", Json::from(replicas)),
        ("items", Json::from(items.len())),
        ("corpus_cases", Json::from(corpus_count)),
        ("victim", Json::from(victim)),
        ("kill_tick", Json::from(kill_tick)),
        (
            "injected_kills",
            Json::from(faults.injected_at(site::FLEET_REPLICA_KILL)),
        ),
        ("failover_items", Json::from(failover_items)),
        ("client_rounds", Json::from(rounds_total)),
        ("victim_restarts", Json::from(sup.restarts(victim))),
        ("readyz_wait_ms", Json::from(readyz_wait_ms)),
        ("frames_replayed", Json::from(frames_replayed)),
        ("warm_after_restart", Json::from(warm_hit)),
        (
            "replay_budget_ms",
            Json::from(FLEET_REPLAY_BUDGET.as_millis() as u64),
        ),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let rows: Vec<PaperRow> = if args.small {
        small_rows()
    } else {
        PAPER_TABLE1.to_vec()
    };
    let mut violations = Violations(Vec::new());

    let (pipeline, pool, serving, fleet) = if args.corpus_only {
        (Json::Null, Json::Null, Json::Null, Json::Null)
    } else {
        // Fault-free serial baselines: the reference fingerprints,
        // themselves oracle-certified.
        eprintln!(
            "chaosmat: {} rows, seed {}, jobs {}",
            rows.len(),
            args.seed,
            args.jobs
        );
        let mut baselines = Vec::with_capacity(rows.len());
        for row in &rows {
            let stg = benchmarks::by_name(row.name).expect("known benchmark");
            match synthesize(&stg, &table1_options(Faults::none())) {
                Ok(report) => {
                    violations.check(
                        certify(&stg, &report).is_ok(),
                        &format!("baseline/{}: failed certification", row.name),
                    );
                    let fp = fingerprint(&report);
                    baselines.push((row.name.to_string(), stg, fp));
                }
                Err(e) => {
                    violations.check(false, &format!("baseline/{}: {e}", row.name));
                    baselines.push((row.name.to_string(), stg, String::new()));
                }
            }
        }

        (
            pipeline_leg(&rows, &baselines, args.seed, &mut violations),
            pool_leg(&baselines, args.seed, args.jobs, &mut violations),
            serving_leg(&baselines, args.seed, args.jobs, &mut violations),
            if args.fleet {
                fleet_leg(
                    &baselines,
                    args.corpus,
                    args.seed,
                    args.jobs,
                    &mut violations,
                )
            } else {
                Json::Null
            },
        )
    };
    let corpus = if args.corpus > 0 {
        corpus_leg(args.corpus, args.seed, &mut violations)
    } else {
        Json::Null
    };

    let doc = Json::obj([
        ("version", Json::from(1u64)),
        (
            "config",
            Json::obj([
                ("rows", Json::from(rows.len())),
                ("small", Json::from(args.small)),
                ("seed", Json::from(args.seed)),
                ("jobs", Json::from(args.jobs)),
                ("backtrack_limit", Json::from(TABLE1_BACKTRACK_LIMIT)),
                ("corpus", Json::from(args.corpus)),
                ("fleet", Json::from(args.fleet)),
            ]),
        ),
        ("pipeline", pipeline),
        ("pool", pool),
        ("serving", serving),
        ("fleet", fleet),
        ("corpus", corpus),
        (
            "violations",
            Json::Arr(
                violations
                    .0
                    .iter()
                    .map(|v| Json::from(v.as_str()))
                    .collect(),
            ),
        ),
        ("passed", Json::from(violations.0.is_empty())),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if violations.0.is_empty() {
        let subjects = if args.corpus_only {
            format!("{} corpus cases", args.corpus)
        } else if args.corpus > 0 {
            format!("{} rows and {} corpus cases", rows.len(), args.corpus)
        } else {
            format!("{} rows", rows.len())
        };
        println!("chaosmat: PASS — {subjects} certified under every fault plan");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaosmat: FAIL — {} violations", violations.0.len());
        for v in &violations.0 {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
