//! `loadgen` — replay the Table-1 suite against the synthesis service.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--fleet HOST:PORT,HOST:PORT,...]
//!         [--concurrency N] [--jobs N] [--repeat N]
//!         [--small] [--corpus N] [--timeout-ms T] [--out FILE]
//! ```
//!
//! Without `--addr`, starts an in-process [`modsyn_svc::Server`] on a free
//! port (with `--jobs` pool workers) and tears it down afterwards; with
//! `--addr`, targets an already running `modsynd`; with `--fleet`, targets
//! a replica fleet (e.g. one supervised by `modsynfleet`) through the
//! consistent-hash failover router — each request routes by its STG
//! digest and falls over to the next replica in rendezvous order when its
//! primary is down, so the generator keeps certifying responses while a
//! replica is `kill -9`'d and restarted under it.
//!
//! The run has two passes over the benchmark set (all 23 Table-1 rows, or
//! the small subset with `--small`), each issuing `concurrency` parallel
//! client threads, `--repeat` rounds per pass:
//!
//! * **cold** — first contact: every row is a cache miss and synthesises
//!   on the pool (repeats of the same row within the pass may hit),
//! * **warm** — same requests again: every row must be a cache hit.
//!
//! With `--corpus N` the work set extends by the first `N` seeds of the
//! compositional corpus stream: composed in-theory cases are posted as
//! `method=modular` and must come back `200` certified like the Table-1
//! rows, while asymmetric-choice probes are posted as `method=lavagno`
//! and must draw the typed `422 not-free-choice` rejection carrying
//! `X-Modsyn-Class: asymmetric-choice` — the serving path's rejection
//! taxonomy under load, not just its happy path.
//!
//! Every response is checked against its row's expectation: status 200
//! with `"certified":true` in the body, or the expected typed 422.
//! The summary (throughput and p50/p95/p99 latency per pass, plus the
//! server's own `/metrics` counters) is printed and written to
//! `BENCH_serve.json` (or `--out FILE`).
//!
//! Acceptance: both passes must be error-free. Against a single server
//! the warm pass must additionally serve every cacheable row as a cache
//! hit; against a fleet the hit floor relaxes to "some hits" — a replica
//! killed mid-run hands its slice to its failover, so per-replica warmth
//! moves (the chaos matrix owns the strict warm-restart assertion).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use modsyn_fault::fnv1a64;
use modsyn_fleet::FleetRouter;
use modsyn_obs::{Json, Tracer};
use modsyn_svc::{client, Metrics, Server, ServerConfig};

struct Args {
    addr: Option<String>,
    fleet: Option<String>,
    concurrency: usize,
    jobs: usize,
    repeat: usize,
    small: bool,
    corpus: u64,
    timeout: Duration,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        fleet: None,
        concurrency: 8,
        jobs: modsyn_par::available_jobs().max(4),
        repeat: 1,
        small: false,
        corpus: 0,
        timeout: Duration::from_secs(120),
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--fleet" => args.fleet = Some(value("--fleet")?),
            "--concurrency" => {
                args.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|_| "bad --concurrency value")?;
            }
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs value")?,
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|_| "bad --repeat value")?;
            }
            "--small" => args.small = true,
            "--corpus" => {
                args.corpus = value("--corpus")?
                    .parse()
                    .map_err(|_| "bad --corpus value")?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --timeout-ms value")?;
                args.timeout = Duration::from_millis(ms);
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--addr HOST:PORT] [--fleet HOST:PORT,HOST:PORT,...] \
                     [--concurrency N] [--jobs N] \
                     [--repeat N] [--small] [--corpus N] [--timeout-ms T] [--out FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.concurrency == 0 || args.repeat == 0 {
        return Err("--concurrency and --repeat must be at least 1".to_string());
    }
    if args.addr.is_some() && args.fleet.is_some() {
        return Err("--addr and --fleet are mutually exclusive".to_string());
    }
    Ok(args)
}

/// What a work item expects of its response.
#[derive(Clone, Copy, PartialEq)]
enum Expect {
    /// `200` with `"certified":true` — cacheable, so the warm pass must
    /// serve it as a hit.
    Certified,
    /// The typed `422 not-free-choice` rejection with
    /// `X-Modsyn-Class: asymmetric-choice` — never cached.
    RejectedBeyondTheory,
}

/// One request to issue: the posted `.g` body, the method path and the
/// expected response shape.
struct WorkItem {
    path: &'static str,
    body: String,
    /// Routing digest of the body (fleet mode routes by it).
    digest: u64,
    expect: Expect,
}

/// Where requests go: one server, or a replica fleet behind the
/// rendezvous failover router.
enum Target {
    Single(SocketAddr),
    Fleet(FleetRouter),
}

impl Target {
    /// The addresses `/metrics` is scraped from (every replica for a
    /// fleet; counters are summed across them).
    fn scrape_addrs(&self) -> Vec<SocketAddr> {
        match self {
            Target::Single(addr) => vec![*addr],
            Target::Fleet(router) => router.addrs().to_vec(),
        }
    }

    fn send(
        &self,
        item: &WorkItem,
        timeout: Duration,
        policy: &client::BackoffPolicy,
    ) -> std::io::Result<client::ClientResponse> {
        match self {
            Target::Single(addr) => client::request_with_backoff(
                *addr,
                "POST",
                item.path,
                item.body.as_bytes(),
                timeout,
                policy,
            ),
            Target::Fleet(router) => router.route(
                item.digest,
                "POST",
                item.path,
                item.body.as_bytes(),
                timeout,
                policy,
            ),
        }
    }
}

/// One request's outcome.
struct Sample {
    latency: Duration,
    cache: String,
    /// The response matched its work item's expectation.
    ok: bool,
    /// The item expects a cacheable 200.
    cacheable: bool,
}

/// Latency/throughput summary of one pass.
struct PassStats {
    requests: usize,
    errors: usize,
    hits: usize,
    /// Requests that expect a cacheable 200 (the warm-pass hit target).
    cacheable: usize,
    wall: Duration,
    p50: Duration,
    p95: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarise(samples: &[Sample], wall: Duration) -> PassStats {
    let mut latencies: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    latencies.sort_unstable();
    PassStats {
        requests: samples.len(),
        errors: samples.iter().filter(|s| !s.ok).count(),
        hits: samples.iter().filter(|s| s.cache == "hit").count(),
        cacheable: samples.iter().filter(|s| s.cacheable).count(),
        wall,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
    }
}

fn pass_json(stats: &PassStats, server_histograms: Json) -> Json {
    let rps = if stats.wall.as_secs_f64() > 0.0 {
        stats.requests as f64 / stats.wall.as_secs_f64()
    } else {
        0.0
    };
    Json::obj([
        ("requests", Json::from(stats.requests)),
        ("errors", Json::from(stats.errors)),
        ("cache_hits", Json::from(stats.hits)),
        ("cacheable", Json::from(stats.cacheable)),
        ("wall_seconds", Json::from(stats.wall.as_secs_f64())),
        ("throughput_rps", Json::from(rps)),
        ("p50_ms", Json::from(stats.p50.as_secs_f64() * 1e3)),
        ("p95_ms", Json::from(stats.p95.as_secs_f64() * 1e3)),
        ("p99_ms", Json::from(stats.p99.as_secs_f64() * 1e3)),
        // The server's own view of the same traffic (log-scale
        // histograms, µs, cumulative at scrape time) next to the
        // client-side percentiles above.
        ("server_histograms", server_histograms),
    ])
}

/// Runs one pass: `work` items fanned over `concurrency` threads.
///
/// Each request runs under [`client::request_with_backoff`], so transient
/// connect failures, torn responses and `Retry-After`-bearing 503s (load
/// shed, open breaker) are retried with bounded jittered backoff instead
/// of being counted as errors — the generator measures the service, not
/// the luck of its own connections. The jitter seed varies per work item
/// so retries do not synchronise into waves.
fn run_pass(
    target: &Target,
    work: &[WorkItem],
    concurrency: usize,
    timeout: Duration,
) -> (Vec<Sample>, Duration) {
    let next = AtomicUsize::new(0);
    let samples = Mutex::new(Vec::with_capacity(work.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = work.get(i) else { break };
                let policy = client::BackoffPolicy {
                    seed: client::BackoffPolicy::default().seed ^ i as u64,
                    ..client::BackoffPolicy::default()
                };
                let sent = Instant::now();
                let cacheable = item.expect == Expect::Certified;
                let sample = match target.send(item, timeout, &policy) {
                    Ok(response) => {
                        let ok = match item.expect {
                            Expect::Certified => {
                                response.status == 200
                                    && response.text().contains("\"certified\":true")
                            }
                            Expect::RejectedBeyondTheory => {
                                response.status == 422
                                    && response.text().contains("\"error\":\"not-free-choice\"")
                                    && response.header("x-modsyn-class")
                                        == Some("asymmetric-choice")
                            }
                        };
                        Sample {
                            latency: sent.elapsed(),
                            cache: response
                                .header("x-modsyn-cache")
                                .unwrap_or_default()
                                .to_string(),
                            ok,
                            cacheable,
                        }
                    }
                    Err(_) => Sample {
                        latency: sent.elapsed(),
                        cache: String::new(),
                        ok: false,
                        cacheable,
                    },
                };
                samples
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(sample);
            });
        }
    });
    let wall = started.elapsed();
    (samples.into_inner().unwrap(), wall)
}

/// Scrapes one counter, summed across the target's replicas (a fleet's
/// traffic lands on all of them). `None` when no replica answered.
fn fetch_metric(target: &Target, name: &str, timeout: Duration) -> Option<u64> {
    let mut sum = None;
    for addr in target.scrape_addrs() {
        if let Some(v) = client::request(addr, "GET", "/metrics", b"", timeout)
            .ok()
            .and_then(|r| Metrics::parse_line(&r.text(), name))
        {
            sum = Some(sum.unwrap_or(0) + v);
        }
    }
    sum
}

/// The server-side latency histograms this run exercises, scraped from
/// `/metrics`. Snapshots are cumulative over the server's life, so the
/// warm-pass snapshot includes the cold pass — the delta is the reader's
/// job; the generator records what the server observed.
const SCRAPED_HISTOGRAMS: &[&str] = &[
    "request_us:synth:modular",
    "queue_wait_us",
    "synth_cpu_us:modular",
    "pool_wait_us",
];

/// Scrapes the latency histograms. Quantile sketches do not merge, so a
/// fleet reports its first replica's view — representative, not a total.
fn fetch_histograms(target: &Target, timeout: Duration) -> Json {
    let Some(addr) = target.scrape_addrs().first().copied() else {
        return Json::Null;
    };
    let Some(rendered) = client::request(addr, "GET", "/metrics", b"", timeout)
        .ok()
        .map(|r| r.text())
    else {
        return Json::Null;
    };
    Json::obj(SCRAPED_HISTOGRAMS.iter().map(|name| {
        let quantile =
            |q: &str| Metrics::parse_hist(&rendered, name, q).map_or(Json::Null, Json::from);
        (
            *name,
            Json::obj([
                ("count", quantile("count")),
                ("p50_us", quantile("p50")),
                ("p90_us", quantile("p90")),
                ("p99_us", quantile("p99")),
                ("max_us", quantile("max")),
            ]),
        )
    }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // The benchmark suite, as the .g text a client would post.
    let small_names: Vec<&str> = modsyn_bench::small_rows().iter().map(|r| r.name).collect();
    let mut work: Vec<WorkItem> = modsyn_stg::benchmarks::all()
        .into_iter()
        .filter(|(name, _)| !args.small || small_names.contains(name))
        .flat_map(|(_, stg)| {
            let body = modsyn_stg::write_g(&stg);
            let digest = fnv1a64(body.as_bytes());
            std::iter::repeat_with(move || WorkItem {
                path: "/synth?method=modular",
                body: body.clone(),
                digest,
                expect: Expect::Certified,
            })
            .take(args.repeat)
        })
        .collect();
    // Corpus rows: in-theory cases ride the modular happy path; probes
    // target the theory-scoped comparator and must draw its typed 422.
    for seed in 0..args.corpus {
        let (stg, expectation) = modsyn_corpus::corpus_case(seed);
        let body = modsyn_stg::write_g(&stg);
        let (path, expect) = match expectation {
            modsyn_corpus::Expectation::InTheory => ("/synth?method=modular", Expect::Certified),
            modsyn_corpus::Expectation::BeyondTheory => {
                ("/synth?method=lavagno", Expect::RejectedBeyondTheory)
            }
        };
        for _ in 0..args.repeat {
            work.push(WorkItem {
                path,
                body: body.clone(),
                digest: fnv1a64(body.as_bytes()),
                expect,
            });
        }
    }

    // Target a running daemon, a replica fleet, or host a server
    // in-process.
    let (target, server_thread, handle) = match (&args.addr, &args.fleet) {
        (Some(spec), _) => {
            let addr: SocketAddr = match spec.parse() {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: bad --addr {spec:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (Target::Single(addr), None, None)
        }
        (None, Some(spec)) => {
            let mut addrs = Vec::new();
            for part in spec.split(',').filter(|p| !p.is_empty()) {
                match part.parse() {
                    Ok(a) => addrs.push(a),
                    Err(e) => {
                        eprintln!("error: bad --fleet address {part:?}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if addrs.is_empty() {
                eprintln!("error: --fleet needs at least one address");
                return ExitCode::FAILURE;
            }
            (Target::Fleet(FleetRouter::new(addrs)), None, None)
        }
        (None, None) => {
            let config = ServerConfig {
                jobs: args.jobs,
                queue_capacity: work.len().max(64),
                ..ServerConfig::default()
            };
            let server = match Server::bind(config, Tracer::disabled()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot bind in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.local_addr();
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run());
            (Target::Single(addr), Some(thread), Some(handle))
        }
    };

    let target_desc = match &target {
        Target::Single(addr) => addr.to_string(),
        Target::Fleet(router) => format!("fleet of {}", router.addrs().len()),
    };
    eprintln!(
        "loadgen: {} requests/pass ({} subjects x{} repeat), concurrency {}, server {}",
        work.len(),
        work.len() / args.repeat,
        args.repeat,
        args.concurrency,
        target_desc,
    );

    let (cold_samples, cold_wall) = run_pass(&target, &work, args.concurrency, args.timeout);
    let cold = summarise(&cold_samples, cold_wall);
    let cold_hists = fetch_histograms(&target, args.timeout);
    let (warm_samples, warm_wall) = run_pass(&target, &work, args.concurrency, args.timeout);
    let warm = summarise(&warm_samples, warm_wall);
    let warm_hists = fetch_histograms(&target, args.timeout);

    let metrics = Json::obj(
        [
            "modsynd_requests_total",
            "modsynd_cache_hits_total",
            "modsynd_cache_misses_total",
            "modsynd_cache_evictions_total",
            "modsynd_shed_total",
            "modsynd_aborted_total",
            "modsynd_certified_total",
        ]
        .map(|name| {
            (
                name,
                fetch_metric(&target, name, args.timeout).map_or(Json::Null, Json::from),
            )
        }),
    );

    if let Some(handle) = handle {
        handle.shutdown();
    }
    if let Some(thread) = server_thread {
        let _ = thread.join();
    }

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("benchmarks", Json::from(work.len() / args.repeat)),
                ("repeat", Json::from(args.repeat)),
                ("concurrency", Json::from(args.concurrency)),
                ("jobs", Json::from(args.jobs)),
                ("small", Json::from(args.small)),
                ("corpus", Json::from(args.corpus)),
                (
                    "external",
                    Json::from(args.addr.is_some() || args.fleet.is_some()),
                ),
                (
                    "fleet_replicas",
                    match &target {
                        Target::Single(_) => Json::Null,
                        Target::Fleet(router) => Json::from(router.addrs().len()),
                    },
                ),
            ]),
        ),
        ("cold", pass_json(&cold, cold_hists)),
        ("warm", pass_json(&warm, warm_hists)),
        ("server_metrics", metrics),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    for (label, stats) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{label}: {} req in {:.2}s ({:.1} rps), p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms, {} hits, {} errors",
            stats.requests,
            stats.wall.as_secs_f64(),
            stats.requests as f64 / stats.wall.as_secs_f64().max(1e-9),
            stats.p50.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            stats.p99.as_secs_f64() * 1e3,
            stats.hits,
            stats.errors,
        );
    }
    println!("wrote {}", args.out);

    // The warm pass must serve every cacheable row from cache and be
    // error-free; typed 422 rejections are never cached, so they are
    // excluded from the hit target. The cold pass may contain within-pass
    // hits (repeat > 1) but no errors. Against a fleet the hit floor
    // relaxes to "some hits": chaos restarts move slices between
    // replicas, so strict per-row warmth belongs to the chaos matrix.
    let warm_enough = match &target {
        Target::Single(_) => warm.hits >= warm.cacheable,
        Target::Fleet(_) => warm.hits > 0,
    };
    if cold.errors > 0 || warm.errors > 0 || !warm_enough {
        eprintln!("error: serving run failed acceptance (errors or cold warm-pass entries)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
