//! `differ` — differential tester for the whole synthesis pipeline.
//!
//! For every subject STG — the 23 Table-1 benchmarks plus a seeded stream
//! of random live safe free-choice STGs from `modsyn_check::gen_stg` — the
//! driver runs a matrix of configurations:
//!
//! * **method**: modular vs direct vs Lavagno,
//! * **parallelism**: serial vs `--jobs 4` (must produce *identical*
//!   reports),
//! * **SAT configuration**: the default solver vs each member of the
//!   standard portfolio (Activity+learning, Jeroslow-Wang chronological,
//!   MOMS chronological),
//! * **SAT engine**: the default CDCL core vs the classic DPLL engine vs
//!   lookahead cube-and-conquer — three independent deciders over the
//!   same CSC encodings must synthesise observation-equivalent circuits.
//!
//! Every success must pass the independent oracle
//! ([`modsyn_check::verify_solution`]: consistency, CSC, speed
//! independence, observable equivalence to the specification), every pair
//! of successes must be observation-equivalent to each other, and every
//! failure must be a *typed capacity or class error* (backtrack limit,
//! no solution within the signal cap, state splitting required, not
//! free-choice). Anything else — a panic, an oracle violation, a
//! disagreement — fails the run; for generated subjects the recipe is
//! shrunk to a minimal failing phase list first.
//!
//! With `--corpus A..B` the subject set extends to the compositional
//! corpus stream (composed in-theory cases and asymmetric-choice probes
//! from `modsyn-corpus`); failing corpus subjects shrink through their
//! composition or probe recipe to a minimal derivation.
//!
//! ```text
//! differ [--seeds A..B] [--corpus A..B] [--profile small|medium|mixed]
//!        [--no-benchmarks] [--limit N] [--verbose]
//! ```
//!
//! Exit code 0 iff every subject agrees. Failures print the seed/benchmark
//! and configuration needed to reproduce.

use std::process::ExitCode;

use modsyn::{certify_report, Engine, Method, SynthesisError, SynthesisOptions, SynthesisReport};
use modsyn_bench::TABLE1_BACKTRACK_LIMIT;
use modsyn_check::{check_equivalence, gen_recipe, Profile, StgRecipe};
use modsyn_corpus::{corpus_case, gen_asym, gen_corpus, AsymRecipe, CorpusRecipe, Expectation};
use modsyn_sat::{standard_portfolio, SolverOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::{benchmarks, Stg};

struct Config {
    label: String,
    method: Method,
    solver: SolverOptions,
    engine: Engine,
    jobs: usize,
}

fn configs(limit: u64) -> Vec<Config> {
    let base = SolverOptions {
        max_backtracks: Some(limit),
        ..SolverOptions::default()
    };
    let mut list = vec![
        Config {
            label: "modular/serial".into(),
            method: Method::Modular,
            solver: base,
            engine: Engine::default(),
            jobs: 1,
        },
        Config {
            label: "modular/jobs4".into(),
            method: Method::Modular,
            solver: base,
            engine: Engine::default(),
            jobs: 4,
        },
        Config {
            label: "modular/dpll".into(),
            method: Method::Modular,
            solver: base,
            engine: Engine::Dpll,
            jobs: 1,
        },
        Config {
            label: "direct/serial".into(),
            method: Method::Direct,
            solver: base,
            engine: Engine::default(),
            jobs: 1,
        },
        Config {
            label: "direct/cnc".into(),
            method: Method::Direct,
            solver: base,
            engine: Engine::cnc(),
            jobs: 1,
        },
        Config {
            label: "lavagno/serial".into(),
            method: Method::Lavagno,
            solver: base,
            engine: Engine::default(),
            jobs: 1,
        },
    ];
    for (i, solver) in standard_portfolio(base).into_iter().enumerate() {
        list.push(Config {
            label: format!("modular/portfolio{i}"),
            method: Method::Modular,
            solver,
            engine: Engine::Dpll,
            jobs: 1,
        });
    }
    list
}

/// A failure is legitimate when it is one of the typed capacity/class
/// errors the paper itself reports (Table 1's aborts and internal state
/// errors). Everything else means a pipeline bug.
fn failure_is_legitimate(e: &SynthesisError) -> bool {
    matches!(
        e,
        SynthesisError::BacktrackLimit { .. }
            | SynthesisError::NoSolution { .. }
            | SynthesisError::NotFreeChoice
            | SynthesisError::StateSplittingRequired
    )
}

/// Runs the full configuration matrix on one subject; returns the first
/// disagreement as an error message, or `Ok` if the subject agrees.
fn check_subject(stg: &Stg, limit: u64, verbose: bool) -> Result<(), String> {
    let spec = derive(stg, &DeriveOptions::default())
        .map_err(|e| format!("specification graph underivable: {e}"))?;
    let mut successes: Vec<(String, SynthesisReport)> = Vec::new();
    for cfg in configs(limit) {
        let options = SynthesisOptions {
            method: cfg.method,
            solver: cfg.solver,
            engine: cfg.engine,
            jobs: cfg.jobs,
            ..Default::default()
        };
        match modsyn::synthesize(stg, &options) {
            Ok(report) => {
                certify_report(Some(&spec), &report)
                    .map_err(|e| format!("{}: oracle violation: {e}", cfg.label))?;
                if verbose {
                    eprintln!(
                        "    {}: ok ({} states, {} literals)",
                        cfg.label, report.final_states, report.literals
                    );
                }
                successes.push((cfg.label, report));
            }
            Err(e) if failure_is_legitimate(&e) => {
                if verbose {
                    eprintln!("    {}: legitimate failure: {e}", cfg.label);
                }
            }
            Err(e) => return Err(format!("{}: illegitimate failure: {e}", cfg.label)),
        }
    }

    // Serial vs parallel must agree *bit for bit*, not just behaviourally.
    let find = |label: &str| successes.iter().find(|(l, _)| l == label);
    if let (Some((_, serial)), Some((_, par))) = (find("modular/serial"), find("modular/jobs4")) {
        if serial.graph != par.graph || serial.functions != par.functions {
            return Err("modular/serial and modular/jobs4 reports differ".into());
        }
    }

    // Every pair of successes must implement the same observable behaviour.
    for i in 0..successes.len() {
        for (lj, rj) in &successes[i + 1..] {
            let (li, ri) = &successes[i];
            check_equivalence(&ri.graph, &rj.graph)
                .map_err(|e| format!("{li} and {lj} disagree on observable behaviour: {e}"))?;
        }
    }
    Ok(())
}

/// Shrinks a failing recipe of any family: repeatedly replace it by the
/// first shrunk candidate that still fails, until none do.
fn shrink_to_minimal<R: Clone>(
    recipe: &R,
    build: impl Fn(&R) -> Stg,
    shrink: impl Fn(&R) -> Vec<R>,
    limit: u64,
) -> (R, String) {
    let mut current = recipe.clone();
    let mut message = check_subject(&build(&current), limit, false)
        .expect_err("shrink_to_minimal requires a failing recipe");
    loop {
        let mut shrunk = false;
        for candidate in shrink(&current) {
            if let Err(m) = check_subject(&build(&candidate), limit, false) {
                current = candidate;
                message = m;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return (current, message);
        }
    }
}

/// [`shrink_to_minimal`] for the `gen_stg` recipe family.
fn shrink_failure(recipe: &StgRecipe, limit: u64) -> (StgRecipe, String) {
    shrink_to_minimal(recipe, StgRecipe::build, StgRecipe::shrink, limit)
}

struct Args {
    seeds: std::ops::Range<u64>,
    corpus: std::ops::Range<u64>,
    profile: Option<Profile>,
    benchmarks: bool,
    limit: u64,
    verbose: bool,
}

fn parse_range(flag: &str, v: &str) -> Result<std::ops::Range<u64>, String> {
    let (a, b) = v
        .split_once("..")
        .ok_or_else(|| format!("bad {flag} range {v:?}, expected A..B"))?;
    let a: u64 = a.parse().map_err(|_| format!("bad seed {a:?}"))?;
    let b: u64 = b.parse().map_err(|_| format!("bad seed {b:?}"))?;
    Ok(a..b)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..20,
        corpus: 0..0,
        profile: None,
        benchmarks: true,
        limit: TABLE1_BACKTRACK_LIMIT,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value like 0..50")?;
                args.seeds = parse_range("--seeds", &v)?;
            }
            "--corpus" => {
                let v = it.next().ok_or("--corpus needs a value like 0..50")?;
                args.corpus = parse_range("--corpus", &v)?;
            }
            "--profile" => {
                let v = it.next().ok_or("--profile needs a value")?;
                args.profile = match v.as_str() {
                    "small" => Some(Profile::Small),
                    "medium" => Some(Profile::Medium),
                    "mixed" => None,
                    other => return Err(format!("unknown profile {other:?}")),
                };
            }
            "--no-benchmarks" => args.benchmarks = false,
            "--limit" => {
                let v = it.next().ok_or("--limit needs a value")?;
                args.limit = v.parse().map_err(|_| "bad --limit value".to_string())?;
            }
            "--verbose" => args.verbose = true,
            other => {
                return Err(format!(
                    "unexpected argument {other:?}\n\
                     usage: differ [--seeds A..B] [--corpus A..B] \
                     [--profile small|medium|mixed] [--no-benchmarks] [--limit N] [--verbose]"
                ))
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut checked = 0usize;
    let mut failures = 0usize;

    if args.benchmarks {
        for (name, stg) in benchmarks::all() {
            eprintln!("benchmark {name}");
            checked += 1;
            if let Err(msg) = check_subject(&stg, args.limit, args.verbose) {
                failures += 1;
                eprintln!("FAIL benchmark {name}: {msg}");
            }
        }
    }

    for seed in args.seeds.clone() {
        let profile = args.profile.unwrap_or(if seed % 2 == 0 {
            Profile::Small
        } else {
            Profile::Medium
        });
        let recipe = gen_recipe(seed, profile);
        eprintln!("seed {seed} ({profile:?}, {} phases)", recipe.phases.len());
        checked += 1;
        if let Err(_first) = check_subject(&recipe.build(), args.limit, args.verbose) {
            failures += 1;
            let (minimal, msg) = shrink_failure(&recipe, args.limit);
            eprintln!(
                "FAIL seed {seed} ({profile:?}): {msg}\n  minimal recipe: {:?}\n  \
                 reproduce: differ --seeds {seed}..{} --profile {}",
                minimal.phases,
                seed + 1,
                match profile {
                    Profile::Small => "small",
                    Profile::Medium => "medium",
                },
            );
        }
    }

    // Corpus subjects: the composed/probe stream the `corpus` binary
    // sweeps, run through the same configuration matrix. In-theory cases
    // shrink through the composition recipe (drop children, shrink
    // leaves), probes through the probe recipe (fewer branches, narrower
    // fork) — either way a failure prints a minimal derivation.
    for seed in args.corpus.clone() {
        let (stg, expectation) = corpus_case(seed);
        eprintln!("corpus seed {seed} ({})", expectation.label());
        checked += 1;
        if let Err(_first) = check_subject(&stg, args.limit, args.verbose) {
            failures += 1;
            let (derivation, msg) = match expectation {
                Expectation::InTheory => {
                    let (minimal, msg) = shrink_to_minimal(
                        &gen_corpus(seed),
                        |r| r.build().0,
                        CorpusRecipe::shrink,
                        args.limit,
                    );
                    (minimal.node.derivation(), msg)
                }
                Expectation::BeyondTheory => {
                    let (minimal, msg) = shrink_to_minimal(
                        &gen_asym(seed),
                        |r| r.build(),
                        AsymRecipe::shrink,
                        args.limit,
                    );
                    (
                        format!(
                            "asym(width {}, branches {})",
                            minimal.width, minimal.branches
                        ),
                        msg,
                    )
                }
            };
            eprintln!(
                "FAIL corpus seed {seed}: {msg}\n  minimal derivation: {derivation}\n  \
                 reproduce: differ --corpus {seed}..{}",
                seed + 1,
            );
        }
    }

    if failures == 0 {
        println!("differ: {checked} subjects, all configurations agree");
        ExitCode::SUCCESS
    } else {
        println!("differ: {failures} of {checked} subjects FAILED");
        ExitCode::FAILURE
    }
}
