//! `increment` — incremental-synthesis benchmark over the Table-1 rows.
//!
//! ```text
//! increment [--out FILE] [--seed N] [--rows NAME[,NAME...]]
//!           [--emit-spec NAME] [--emit-edit NAME]
//! ```
//!
//! For every row: synthesise the unedited STG into a cold store, apply the
//! seeded single edit chosen by [`modsyn_bench::incr::choose_edit`],
//! synthesise the edited STG from scratch (the baseline), then again
//! against the warm store (the incremental run). Each incremental result is
//! oracle-certified, byte-identical to the from-scratch run, and re-solves
//! strictly fewer modules than the total — the harness panics otherwise.
//!
//! Writes `BENCH_incr.json` (deterministic apart from the informational
//! wall clocks; no timestamps) and prints one summary line per row.
//!
//! `--emit-spec NAME` / `--emit-edit NAME` print the canonical `.g` text
//! of a row (respectively its seeded edit) to stdout and exit — the CI
//! smoke job feeds these to a live `modsynd` via `/synth` and
//! `/synth/incr`.

use std::process::ExitCode;

use modsyn_bench::incr::{edit_specs, incr_json, run_incr_row};
use modsyn_bench::PAPER_TABLE1;

struct Args {
    out: String,
    seed: usize,
    rows: Option<Vec<String>>,
    emit_spec: Option<String>,
    emit_edit: Option<String>,
}

fn usage() -> &'static str {
    "usage: increment [--out FILE] [--seed N] [--rows NAME[,NAME...]] \
     [--emit-spec NAME] [--emit-edit NAME]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_incr.json".to_string(),
        seed: 0,
        rows: None,
        emit_spec: None,
        emit_edit: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--out" => args.out = value("--out")?,
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|_| "bad --seed value")?;
            }
            "--rows" => {
                args.rows = Some(value("--rows")?.split(',').map(str::to_string).collect());
            }
            "--emit-spec" => args.emit_spec = Some(value("--emit-spec")?),
            "--emit-edit" => args.emit_edit = Some(value("--emit-edit")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Emit modes: print one .g document and stop.
    if let Some(name) = &args.emit_spec {
        let (spec, _) = edit_specs(name, args.seed);
        print!("{spec}");
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &args.emit_edit {
        let (_, edit) = edit_specs(name, args.seed);
        print!("{edit}");
        return ExitCode::SUCCESS;
    }

    let rows: Vec<&str> = match &args.rows {
        Some(names) => {
            for name in names {
                if !PAPER_TABLE1.iter().any(|r| r.name == name) {
                    eprintln!("error: unknown benchmark {name:?}");
                    return ExitCode::FAILURE;
                }
            }
            names.iter().map(String::as_str).collect()
        }
        None => PAPER_TABLE1.iter().map(|r| r.name).collect(),
    };

    let mut measurements = Vec::with_capacity(rows.len());
    for name in rows {
        let m = run_incr_row(name, args.seed);
        println!(
            "{:<12} {:<22} dirty {}/{} (hits {}), full {:.2}s -> incr {:.2}s",
            m.benchmark,
            m.edit,
            m.dirty_modules,
            m.total_modules,
            m.store_hits,
            m.wall_full_s,
            m.wall_incr_s
        );
        measurements.push(m);
    }

    let doc = incr_json(args.seed, &measurements);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    let full: f64 = measurements.iter().map(|m| m.wall_full_s).sum();
    let incr: f64 = measurements.iter().map(|m| m.wall_incr_s).sum();
    println!(
        "wrote {} ({} rows; full {:.2}s, incremental {:.2}s)",
        args.out,
        measurements.len(),
        full,
        incr
    );
    ExitCode::SUCCESS
}
