//! Regenerates the paper's in-text formula-size claim (experiment E2).
//!
//! The paper: "For STG benchmark mmu0, the direct SAT formulation requires
//! the solution of a very large SAT formula with 35,386 clauses [and 1,044
//! variables]. In comparison, our modular partitioning approach requires
//! only three very small formulas having 954 clauses, 954 clauses, and 85
//! clauses."
//!
//! Run with: `cargo run -p modsyn-bench --release --bin clause_stats [benchmark]`

use modsyn::{encode_csc, modular_resolve, CscSolveOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mmu0".to_string());
    let Some(stg) = benchmarks::by_name(&name) else {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(1);
    };
    let sg = derive(&stg, &DeriveOptions::default()).expect("benchmark derives");
    let analysis = sg.csc_analysis();
    println!(
        "{name}: {} states, {} edges, {} CSC conflict pairs, lower bound {}",
        sg.state_count(),
        sg.edge_count(),
        analysis.csc_pairs.len(),
        analysis.lower_bound
    );

    // Direct formulation at the lower bound (the formula the no-decomposition
    // method must solve first).
    let m = analysis.lower_bound.max(1);
    let direct = encode_csc(&sg, &analysis, m);
    println!(
        "\ndirect formulation ({} state signals): {} clauses, {} variables",
        m,
        direct.formula.clause_count(),
        direct.formula.num_vars()
    );
    println!("  (paper, original mmu0: 35,386 clauses, 1,044 variables)");

    // Modular formulation: the formulas actually solved by the flow.
    let out = modular_resolve(&sg, &CscSolveOptions::default()).expect("modular resolves");
    println!("\nmodular formulation: {} formulas", out.formulas.len());
    for f in &out.formulas {
        println!(
            "  {} state signals: {} clauses, {} variables -> {}",
            f.state_signals,
            f.clauses,
            f.variables,
            if f.satisfiable { "sat" } else { "unsat" }
        );
    }
    println!("  (paper, original mmu0: three formulas of 954, 954 and 85 clauses)");

    let largest_module = out.formulas.iter().map(|f| f.clauses).max().unwrap_or(0);
    let ratio = direct.formula.clause_count() as f64 / largest_module.max(1) as f64;
    println!("\nlargest modular formula is {ratio:.1}x smaller than the direct formula");
}
