//! Shared harness for the Table-1 reproduction binaries and benches.
//!
//! [`PAPER_TABLE1`] transcribes the paper's Table 1 verbatim (the reference
//! the binaries print next to our measurements); [`run_row`] executes one
//! benchmark × method with the standard limits; [`run_table`] produces the
//! whole comparison.

pub mod corpus;
pub mod incr;

use std::time::Instant;

use modsyn::{synthesize, FormulaStat, Method, SynthesisError, SynthesisOptions};
use modsyn_obs::Json;
use modsyn_par::{JobHandle, WorkerPool};
use modsyn_sat::{SolverOptions, SolverStats};
use modsyn_stg::benchmarks;

/// A comparator's result for one Table-1 row as printed in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PaperOutcome {
    /// Solved: final signals, two-level literals, CPU seconds.
    Solved {
        /// "Final no. of signal" column.
        final_signals: usize,
        /// "2level Area literals" column.
        literals: usize,
        /// "CPU time sec." column.
        cpu: f64,
    },
    /// "SAT Backtrack Limit" abort, with the CPU seconds spent.
    BacktrackLimit {
        /// Seconds before the abort (`None` for "> 3600").
        cpu: Option<f64>,
    },
    /// "Internal State Error" (missing state splitting in SIS).
    InternalStateError,
    /// "Non-Free-Choice STG".
    NonFreeChoice,
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// "Initial no. of states".
    pub initial_states: usize,
    /// "Initial no. of signal".
    pub initial_signals: usize,
    /// Our method: (final states, final signals, literals, cpu).
    pub ours: (usize, usize, usize, f64),
    /// Vanbekbergen et al. (direct, no decomposition).
    pub direct: PaperOutcome,
    /// Lavagno and Moon et al.
    pub lavagno: PaperOutcome,
}

use PaperOutcome::{BacktrackLimit, InternalStateError, NonFreeChoice, Solved};

/// The paper's Table 1, transcribed.
pub const PAPER_TABLE1: [PaperRow; 23] = [
    PaperRow {
        name: "mr0",
        initial_states: 302,
        initial_signals: 11,
        ours: (469, 14, 41, 2.80),
        direct: BacktrackLimit { cpu: None },
        lavagno: Solved {
            final_signals: 13,
            literals: 86,
            cpu: 1084.5,
        },
    },
    PaperRow {
        name: "mr1",
        initial_states: 190,
        initial_signals: 8,
        ours: (373, 12, 55, 1.73),
        direct: BacktrackLimit { cpu: Some(872.9) },
        lavagno: Solved {
            final_signals: 10,
            literals: 53,
            cpu: 237.5,
        },
    },
    PaperRow {
        name: "mmu0",
        initial_states: 174,
        initial_signals: 8,
        ours: (441, 11, 49, 0.87),
        direct: BacktrackLimit { cpu: Some(406.3) },
        lavagno: InternalStateError,
    },
    PaperRow {
        name: "mmu1",
        initial_states: 82,
        initial_signals: 8,
        ours: (131, 10, 50, 0.37),
        direct: BacktrackLimit { cpu: Some(101.3) },
        lavagno: Solved {
            final_signals: 10,
            literals: 37,
            cpu: 47.8,
        },
    },
    PaperRow {
        name: "sbuf-ram-write",
        initial_states: 58,
        initial_signals: 10,
        ours: (93, 12, 59, 0.36),
        direct: Solved {
            final_signals: 12,
            literals: 74,
            cpu: 5.21,
        },
        lavagno: Solved {
            final_signals: 12,
            literals: 35,
            cpu: 54.6,
        },
    },
    PaperRow {
        name: "vbe4a",
        initial_states: 58,
        initial_signals: 6,
        ours: (106, 8, 37, 0.19),
        direct: Solved {
            final_signals: 8,
            literals: 40,
            cpu: 0.25,
        },
        lavagno: Solved {
            final_signals: 8,
            literals: 41,
            cpu: 5.5,
        },
    },
    PaperRow {
        name: "nak-pa",
        initial_states: 56,
        initial_signals: 9,
        ours: (59, 10, 25, 0.20),
        direct: Solved {
            final_signals: 10,
            literals: 32,
            cpu: 0.08,
        },
        lavagno: Solved {
            final_signals: 10,
            literals: 41,
            cpu: 20.8,
        },
    },
    PaperRow {
        name: "pe-rcv-ifc-fc",
        initial_states: 46,
        initial_signals: 8,
        ours: (50, 9, 48, 0.24),
        direct: Solved {
            final_signals: 9,
            literals: 50,
            cpu: 0.13,
        },
        lavagno: Solved {
            final_signals: 9,
            literals: 62,
            cpu: 14.3,
        },
    },
    PaperRow {
        name: "ram-read-sbuf",
        initial_states: 36,
        initial_signals: 10,
        ours: (44, 11, 28, 0.15),
        direct: Solved {
            final_signals: 11,
            literals: 44,
            cpu: 0.06,
        },
        lavagno: Solved {
            final_signals: 11,
            literals: 23,
            cpu: 65.2,
        },
    },
    PaperRow {
        name: "alex-nonfc",
        initial_states: 24,
        initial_signals: 6,
        ours: (31, 7, 26, 0.05),
        direct: Solved {
            final_signals: 7,
            literals: 22,
            cpu: 0.03,
        },
        lavagno: NonFreeChoice,
    },
    PaperRow {
        name: "sbuf-send-pkt2",
        initial_states: 21,
        initial_signals: 6,
        ours: (26, 7, 20, 0.04),
        direct: Solved {
            final_signals: 7,
            literals: 29,
            cpu: 0.04,
        },
        lavagno: Solved {
            final_signals: 7,
            literals: 14,
            cpu: 8.6,
        },
    },
    PaperRow {
        name: "sbuf-send-ctl",
        initial_states: 20,
        initial_signals: 6,
        ours: (32, 8, 33, 0.09),
        direct: Solved {
            final_signals: 8,
            literals: 35,
            cpu: 0.03,
        },
        lavagno: Solved {
            final_signals: 8,
            literals: 43,
            cpu: 3.4,
        },
    },
    PaperRow {
        name: "atod",
        initial_states: 20,
        initial_signals: 6,
        ours: (26, 7, 15, 0.02),
        direct: Solved {
            final_signals: 7,
            literals: 16,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 7,
            literals: 19,
            cpu: 2.9,
        },
    },
    PaperRow {
        name: "pa",
        initial_states: 18,
        initial_signals: 4,
        ours: (34, 6, 18, 0.12),
        direct: Solved {
            final_signals: 6,
            literals: 22,
            cpu: 0.06,
        },
        lavagno: InternalStateError,
    },
    PaperRow {
        name: "alloc-outbound",
        initial_states: 17,
        initial_signals: 7,
        ours: (29, 9, 33, 0.09),
        direct: Solved {
            final_signals: 9,
            literals: 27,
            cpu: 0.04,
        },
        lavagno: Solved {
            final_signals: 9,
            literals: 23,
            cpu: 2.5,
        },
    },
    PaperRow {
        name: "wrdata",
        initial_states: 16,
        initial_signals: 4,
        ours: (20, 5, 17, 0.03),
        direct: Solved {
            final_signals: 5,
            literals: 18,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 5,
            literals: 21,
            cpu: 0.9,
        },
    },
    PaperRow {
        name: "fifo",
        initial_states: 16,
        initial_signals: 4,
        ours: (23, 5, 15, 0.03),
        direct: Solved {
            final_signals: 5,
            literals: 17,
            cpu: 0.02,
        },
        lavagno: Solved {
            final_signals: 5,
            literals: 15,
            cpu: 0.7,
        },
    },
    PaperRow {
        name: "sbuf-read-ctl",
        initial_states: 14,
        initial_signals: 6,
        ours: (18, 7, 16, 0.06),
        direct: Solved {
            final_signals: 7,
            literals: 20,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 7,
            literals: 15,
            cpu: 1.5,
        },
    },
    PaperRow {
        name: "nouse",
        initial_states: 12,
        initial_signals: 3,
        ours: (16, 4, 12, 0.01),
        direct: Solved {
            final_signals: 4,
            literals: 12,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 4,
            literals: 14,
            cpu: 0.5,
        },
    },
    PaperRow {
        name: "vbe-ex2",
        initial_states: 8,
        initial_signals: 2,
        ours: (12, 4, 18, 0.08),
        direct: Solved {
            final_signals: 4,
            literals: 18,
            cpu: 0.03,
        },
        lavagno: Solved {
            final_signals: 4,
            literals: 21,
            cpu: 0.5,
        },
    },
    PaperRow {
        name: "nousc-ser",
        initial_states: 8,
        initial_signals: 3,
        ours: (10, 4, 9, 0.02),
        direct: Solved {
            final_signals: 4,
            literals: 9,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 4,
            literals: 11,
            cpu: 0.4,
        },
    },
    PaperRow {
        name: "sendr-done",
        initial_states: 7,
        initial_signals: 3,
        ours: (10, 4, 8, 0.02),
        direct: Solved {
            final_signals: 4,
            literals: 8,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 4,
            literals: 6,
            cpu: 0.4,
        },
    },
    PaperRow {
        name: "vbe-ex1",
        initial_states: 5,
        initial_signals: 2,
        ours: (8, 3, 7, 0.01),
        direct: Solved {
            final_signals: 3,
            literals: 7,
            cpu: 0.01,
        },
        lavagno: Solved {
            final_signals: 3,
            literals: 7,
            cpu: 0.3,
        },
    },
];

/// The backtrack limit playing the role of the paper's 3600-second SIS
/// budget in Table-1 runs: a deterministic stand-in chosen just above the
/// largest search any Table-1 row needs with the default CDCL engine.
///
/// Re-audited for the `modsyn-cnc` CDCL core (the previous 40 k was set
/// just above the classic engine's hardest *modular* search). Per-row CDCL
/// conflict needs, measured at an effectively unbounded limit (worst
/// single SAT attempt per row; full audit table in `EXPERIMENTS.md`):
/// `mr1` direct 250 k (`m = 3` UNSAT proof), `mr1` modular 38 k, `mr0`
/// direct 21 k (modular 14 k), `mmu0` direct 18 k, `mmu1` direct 1.5 k,
/// every other row ≤ 5 k. 300 k covers the table's hardest proof with ~20 % headroom, so
/// the direct method now completes every row — including `mr1`, the
/// classic engine's one remaining abort — while a genuine search
/// regression (a blow-up past 300 k conflicts) still aborts the row.
pub const TABLE1_BACKTRACK_LIMIT: u64 = 300_000;

/// Our measured outcome for one benchmark × method.
#[derive(Debug, Clone)]
pub enum Measured {
    /// Synthesis succeeded.
    Solved {
        /// Final state count of the expanded graph.
        final_states: usize,
        /// Final signal count.
        final_signals: usize,
        /// Total two-level literals.
        literals: usize,
        /// Wall-clock seconds.
        cpu: f64,
        /// Every SAT formula attempted, with its solver counters.
        formulas: Vec<FormulaStat>,
    },
    /// The solver hit the Table-1 backtrack limit.
    BacktrackLimit {
        /// Seconds before the abort.
        cpu: f64,
    },
    /// Restricted method rejected the input.
    NotFreeChoice,
    /// Race-free assignment impossible — the internal-state-error analogue.
    StateSplittingRequired,
    /// Any other failure.
    Failed(String),
}

impl Measured {
    /// Literals if solved.
    pub fn literals(&self) -> Option<usize> {
        match self {
            Measured::Solved { literals, .. } => Some(*literals),
            _ => None,
        }
    }

    /// CPU seconds if meaningful.
    pub fn cpu(&self) -> Option<f64> {
        match self {
            Measured::Solved { cpu, .. } | Measured::BacktrackLimit { cpu } => Some(*cpu),
            _ => None,
        }
    }

    /// Short cell text for tables.
    pub fn cell(&self) -> String {
        match self {
            Measured::Solved {
                final_signals,
                literals,
                cpu,
                ..
            } => {
                format!("{final_signals} sig / {literals} lit / {cpu:.2}s")
            }
            Measured::BacktrackLimit { cpu } => format!("SAT Backtrack Limit ({cpu:.2}s)"),
            Measured::NotFreeChoice => "Non-Free-Choice STG".to_string(),
            Measured::StateSplittingRequired => "Internal State Error*".to_string(),
            Measured::Failed(e) => format!("failed: {e}"),
        }
    }
}

/// Runs one benchmark with one method under the Table-1 limits.
///
/// # Panics
///
/// Panics if `name` is not a known benchmark.
pub fn run_row(name: &str, method: Method, backtrack_limit: u64) -> Measured {
    let stg = benchmarks::by_name(name).expect("known benchmark");
    let mut options = SynthesisOptions::for_method(method);
    options.solver = SolverOptions {
        max_backtracks: Some(backtrack_limit),
        ..SolverOptions::default()
    };
    let started = std::time::Instant::now();
    match synthesize(&stg, &options) {
        Ok(report) => Measured::Solved {
            final_states: report.final_states,
            final_signals: report.final_signals,
            literals: report.literals,
            cpu: report.cpu_seconds,
            formulas: report.formulas.clone(),
        },
        Err(SynthesisError::BacktrackLimit { .. }) => Measured::BacktrackLimit {
            cpu: started.elapsed().as_secs_f64(),
        },
        Err(SynthesisError::NotFreeChoice) => Measured::NotFreeChoice,
        Err(SynthesisError::StateSplittingRequired) => Measured::StateSplittingRequired,
        Err(e) => Measured::Failed(e.to_string()),
    }
}

/// Our full Table 1: per row, the three methods' measurements.
pub fn run_table(backtrack_limit: u64) -> Vec<(&'static str, Measured, Measured, Measured)> {
    PAPER_TABLE1
        .iter()
        .map(|row| {
            (
                row.name,
                run_row(row.name, Method::Modular, backtrack_limit),
                run_row(row.name, Method::Direct, backtrack_limit),
                run_row(row.name, Method::Lavagno, backtrack_limit),
            )
        })
        .collect()
}

/// The paper row for a benchmark name.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_TABLE1.iter().find(|r| r.name == name)
}

/// The Table-1 rows with fewer than 80 initial states — everything except
/// `mr0`, `mr1`, `mmu0` and `mmu1`, whose direct and Lavagno-style runs
/// dominate the table's wall clock at the standard limit. The CI parallel
/// smoke job runs on this subset.
pub fn small_rows() -> Vec<PaperRow> {
    PAPER_TABLE1
        .iter()
        .copied()
        .filter(|r| r.initial_states < 80)
        .collect()
}

/// A timed table run: the measurements plus wall-clock accounting, produced
/// by [`run_rows_timed`] (sequential) and [`run_rows_pooled`] (worker pool).
#[derive(Debug, Clone)]
pub struct TimedTable {
    /// Per-row measurements, in input order — same shape as [`run_table`].
    pub rows: Vec<(&'static str, Measured, Measured, Measured)>,
    /// Per-row wall clock: the summed duration of the row's three method
    /// runs. Comparable between sequential and pooled runs (it is time
    /// *spent on* the row, not time-to-completion under interleaving).
    pub row_wall_s: Vec<f64>,
    /// Overall wall clock of the whole run.
    pub total_wall_s: f64,
}

fn timed_row(name: &'static str, method: Method, backtrack_limit: u64) -> (Measured, f64) {
    let started = Instant::now();
    let measured = run_row(name, method, backtrack_limit);
    (measured, started.elapsed().as_secs_f64())
}

/// [`run_table`] restricted to `rows`, run sequentially (jobs = 1), timing
/// every benchmark × method execution.
pub fn run_rows_timed(backtrack_limit: u64, rows: &[PaperRow]) -> TimedTable {
    let started = Instant::now();
    let mut out = Vec::with_capacity(rows.len());
    let mut row_wall_s = Vec::with_capacity(rows.len());
    for row in rows {
        let (modular, tm) = timed_row(row.name, Method::Modular, backtrack_limit);
        let (direct, td) = timed_row(row.name, Method::Direct, backtrack_limit);
        let (lavagno, tl) = timed_row(row.name, Method::Lavagno, backtrack_limit);
        out.push((row.name, modular, direct, lavagno));
        row_wall_s.push(tm + td + tl);
    }
    TimedTable {
        rows: out,
        row_wall_s,
        total_wall_s: started.elapsed().as_secs_f64(),
    }
}

/// [`run_rows_timed`] with every benchmark × method run submitted as a job
/// to a [`WorkerPool`] of `jobs` workers. Handles are joined in input
/// order, so the returned rows are identical to the sequential ones; only
/// the wall clocks differ. `jobs <= 1` falls back to the sequential runner.
pub fn run_rows_pooled(backtrack_limit: u64, jobs: usize, rows: &[PaperRow]) -> TimedTable {
    if jobs <= 1 {
        return run_rows_timed(backtrack_limit, rows);
    }
    let started = Instant::now();
    let pool = WorkerPool::new(jobs);
    let handles: Vec<Vec<JobHandle<(Measured, f64)>>> = rows
        .iter()
        .map(|row| {
            let name = row.name;
            [Method::Modular, Method::Direct, Method::Lavagno]
                .into_iter()
                .map(|method| {
                    pool.submit(&format!("{name}:{method}"), move || {
                        timed_row(name, method, backtrack_limit)
                    })
                })
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(rows.len());
    let mut row_wall_s = Vec::with_capacity(rows.len());
    for (row, row_handles) in rows.iter().zip(handles) {
        let mut results = row_handles.into_iter().map(|h| {
            h.join()
                .unwrap_or_else(|p| (Measured::Failed(p.to_string()), 0.0))
        });
        let (modular, tm) = results.next().expect("three jobs per row");
        let (direct, td) = results.next().expect("three jobs per row");
        let (lavagno, tl) = results.next().expect("three jobs per row");
        out.push((row.name, modular, direct, lavagno));
        row_wall_s.push(tm + td + tl);
    }
    drop(pool);
    TimedTable {
        rows: out,
        row_wall_s,
        total_wall_s: started.elapsed().as_secs_f64(),
    }
}

/// The `parallel` section of `BENCH_table1.json`: per-row and total wall
/// clocks of a jobs = 1 run next to a jobs = N pooled run of the same rows.
pub fn parallel_json(jobs: usize, sequential: &TimedTable, pooled: &TimedTable) -> Json {
    let rows: Vec<Json> = sequential
        .rows
        .iter()
        .zip(&sequential.row_wall_s)
        .zip(&pooled.row_wall_s)
        .map(|(((name, ..), &seq), &par)| {
            Json::obj([
                ("benchmark", Json::from(*name)),
                ("sequential_s", Json::from(seq)),
                ("parallel_s", Json::from(par)),
            ])
        })
        .collect();
    Json::obj([
        ("jobs", Json::from(jobs)),
        ("sequential_total_s", Json::from(sequential.total_wall_s)),
        ("parallel_total_s", Json::from(pooled.total_wall_s)),
        (
            "speedup",
            Json::from(sequential.total_wall_s / pooled.total_wall_s.max(1e-9)),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

fn solver_stats_json(s: &SolverStats) -> Json {
    Json::obj([
        ("decisions", Json::from(s.decisions)),
        ("propagations", Json::from(s.propagations)),
        ("backtracks", Json::from(s.backtracks)),
        ("conflicts", Json::from(s.conflicts)),
        ("learned_clauses", Json::from(s.learned_clauses)),
        ("learned_literals", Json::from(s.learned_literals)),
        ("restarts", Json::from(s.restarts)),
        ("peak_clauses", Json::from(s.peak_clauses)),
        ("max_level", Json::from(s.max_level)),
    ])
}

fn formula_json(f: &FormulaStat) -> Json {
    Json::obj([
        ("state_signals", Json::from(f.state_signals)),
        ("variables", Json::from(f.variables)),
        ("clauses", Json::from(f.clauses)),
        ("satisfiable", Json::from(f.satisfiable)),
        ("solver", solver_stats_json(&f.solver)),
    ])
}

/// One machine-readable record for a benchmark × method measurement — the
/// rows of `BENCH_table1.json`.
pub fn measured_record(benchmark: &str, method: Method, measured: &Measured) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("benchmark", Json::from(benchmark)),
        ("method", Json::from(method.to_string())),
    ];
    match measured {
        Measured::Solved {
            final_states,
            final_signals,
            literals,
            cpu,
            formulas,
        } => {
            let peak_vars = formulas.iter().map(|f| f.variables).max().unwrap_or(0);
            let peak_clauses = formulas.iter().map(|f| f.clauses).max().unwrap_or(0);
            let mut total = SolverStats::default();
            for f in formulas {
                total.decisions += f.solver.decisions;
                total.propagations += f.solver.propagations;
                total.backtracks += f.solver.backtracks;
                total.conflicts += f.solver.conflicts;
                total.learned_clauses += f.solver.learned_clauses;
                total.learned_literals += f.solver.learned_literals;
                total.restarts += f.solver.restarts;
                total.peak_clauses = total.peak_clauses.max(f.solver.peak_clauses);
                total.max_level = total.max_level.max(f.solver.max_level);
            }
            fields.extend([
                ("outcome", Json::from("solved")),
                ("wall_s", Json::from(*cpu)),
                ("final_states", Json::from(*final_states)),
                ("final_signals", Json::from(*final_signals)),
                ("literals", Json::from(*literals)),
                ("peak_vars", Json::from(peak_vars)),
                ("peak_clauses", Json::from(peak_clauses)),
                ("solver", solver_stats_json(&total)),
                (
                    "formulas",
                    Json::Arr(formulas.iter().map(formula_json).collect()),
                ),
            ]);
        }
        Measured::BacktrackLimit { cpu } => {
            fields.extend([
                ("outcome", Json::from("backtrack-limit")),
                ("wall_s", Json::from(*cpu)),
            ]);
        }
        Measured::NotFreeChoice => fields.push(("outcome", Json::from("non-free-choice"))),
        Measured::StateSplittingRequired => {
            fields.push(("outcome", Json::from("state-splitting-required")));
        }
        Measured::Failed(e) => {
            fields.extend([
                ("outcome", Json::from("failed")),
                ("error", Json::from(e.as_str())),
            ]);
        }
    }
    Json::obj(fields)
}

/// The full `BENCH_table1.json` document: one record per benchmark × method
/// plus the run configuration.
pub fn table1_json(
    backtrack_limit: u64,
    rows: &[(&'static str, Measured, Measured, Measured)],
) -> Json {
    table1_json_with_parallel(backtrack_limit, rows, None)
}

/// [`table1_json`] with an optional `parallel` section (see
/// [`parallel_json`]) recording jobs = 1 vs jobs = N wall clocks.
pub fn table1_json_with_parallel(
    backtrack_limit: u64,
    rows: &[(&'static str, Measured, Measured, Measured)],
    parallel: Option<Json>,
) -> Json {
    let mut records = Vec::with_capacity(3 * rows.len());
    for (name, modular, direct, lavagno) in rows {
        records.push(measured_record(name, Method::Modular, modular));
        records.push(measured_record(name, Method::Direct, direct));
        records.push(measured_record(name, Method::Lavagno, lavagno));
    }
    let mut fields = vec![
        ("version", Json::from(1u64)),
        ("backtrack_limit", Json::from(backtrack_limit)),
        ("records", Json::Arr(records)),
    ];
    if let Some(parallel) = parallel {
        fields.push(("parallel", parallel));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_covers_every_benchmark() {
        assert_eq!(PAPER_TABLE1.len(), 23);
        for row in &PAPER_TABLE1 {
            assert!(
                modsyn_stg::benchmarks::by_name(row.name).is_some(),
                "{} has no generator",
                row.name
            );
        }
    }

    #[test]
    fn paper_specs_agree_with_stg_crate() {
        for row in &PAPER_TABLE1 {
            let spec = modsyn_stg::benchmarks::paper_spec(row.name).unwrap();
            assert_eq!(spec.initial_states, row.initial_states, "{}", row.name);
            assert_eq!(spec.initial_signals, row.initial_signals, "{}", row.name);
        }
    }

    #[test]
    fn run_row_solves_a_small_benchmark() {
        let m = run_row("vbe-ex1", Method::Modular, TABLE1_BACKTRACK_LIMIT);
        assert!(matches!(m, Measured::Solved { .. }), "{}", m.cell());
        assert!(m.literals().unwrap() > 0);
    }

    #[test]
    fn run_row_reports_non_free_choice() {
        let m = run_row("alex-nonfc", Method::Lavagno, TABLE1_BACKTRACK_LIMIT);
        assert!(matches!(m, Measured::NotFreeChoice));
        assert_eq!(m.literals(), None);
    }

    #[test]
    fn measured_record_round_trips_through_json() {
        let m = run_row("vbe-ex1", Method::Modular, TABLE1_BACKTRACK_LIMIT);
        let record = measured_record("vbe-ex1", Method::Modular, &m);
        let parsed = modsyn_obs::parse_json(&record.pretty()).unwrap();
        assert_eq!(parsed.get("benchmark").unwrap().as_str(), Some("vbe-ex1"));
        assert_eq!(parsed.get("outcome").unwrap().as_str(), Some("solved"));
        assert!(parsed.get("peak_clauses").unwrap().as_f64().unwrap() > 0.0);
        let formulas = parsed.get("formulas").unwrap().as_arr().unwrap();
        assert!(!formulas.is_empty());
        let sat = formulas.last().unwrap();
        assert!(sat.get("solver").unwrap().get("propagations").is_some());
    }

    #[test]
    fn small_rows_exclude_the_four_large_benchmarks() {
        let names: Vec<&str> = small_rows().iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 19);
        for big in ["mr0", "mr1", "mmu0", "mmu1"] {
            assert!(!names.contains(&big), "{big} should be filtered out");
        }
        assert!(names.contains(&"vbe-ex1"));
    }

    #[test]
    fn pooled_rows_match_the_sequential_ones() {
        let rows: Vec<PaperRow> = ["vbe-ex1", "sendr-done", "nousc-ser"]
            .iter()
            .map(|n| *paper_row(n).unwrap())
            .collect();
        let seq = run_rows_timed(TABLE1_BACKTRACK_LIMIT, &rows);
        let pooled = run_rows_pooled(TABLE1_BACKTRACK_LIMIT, 3, &rows);
        assert_eq!(seq.rows.len(), pooled.rows.len());
        assert_eq!(seq.row_wall_s.len(), rows.len());
        for ((sn, sm, sd, sl), (pn, pm, pd, pl)) in seq.rows.iter().zip(&pooled.rows) {
            assert_eq!(sn, pn);
            for (s, p) in [(sm, pm), (sd, pd), (sl, pl)] {
                assert_eq!(std::mem::discriminant(s), std::mem::discriminant(p), "{sn}");
                assert_eq!(s.literals(), p.literals(), "{sn}");
            }
        }
    }

    #[test]
    fn parallel_section_round_trips_through_json() {
        let rows: Vec<PaperRow> = vec![*paper_row("vbe-ex1").unwrap()];
        let seq = run_rows_timed(TABLE1_BACKTRACK_LIMIT, &rows);
        let pooled = run_rows_pooled(TABLE1_BACKTRACK_LIMIT, 2, &rows);
        let doc = table1_json_with_parallel(
            TABLE1_BACKTRACK_LIMIT,
            &seq.rows,
            Some(parallel_json(2, &seq, &pooled)),
        );
        let parsed = modsyn_obs::parse_json(&doc.pretty()).unwrap();
        let parallel = parsed.get("parallel").unwrap();
        assert_eq!(parallel.get("jobs").unwrap().as_f64(), Some(2.0));
        assert!(parallel.get("speedup").unwrap().as_f64().unwrap() > 0.0);
        let rows = parallel.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("benchmark").unwrap().as_str(), Some("vbe-ex1"));
        assert!(rows[0].get("sequential_s").unwrap().as_f64().is_some());
        assert!(rows[0].get("parallel_s").unwrap().as_f64().is_some());
    }

    #[test]
    fn failure_records_carry_their_outcome() {
        let record = measured_record("alex-nonfc", Method::Lavagno, &Measured::NotFreeChoice);
        let parsed = modsyn_obs::parse_json(&record.to_string()).unwrap();
        assert_eq!(
            parsed.get("outcome").unwrap().as_str(),
            Some("non-free-choice")
        );
        assert!(parsed.get("literals").is_none());
    }
}
