//! Two-level minimisation benchmarks: the espresso loop on the logic
//! functions the synthesis flow actually produces, plus scaling on dense
//! random functions.

use criterion::{criterion_group, criterion_main, Criterion};
use modsyn::{modular_resolve, CscSolveOptions};
use modsyn_logic::{complement, minimize, Cover, Cube};
use modsyn_sg::{derive, DeriveOptions, StateGraph};
use modsyn_stg::benchmarks;

/// ON/DC covers of one output of a resolved benchmark.
fn covers_for(graph: &StateGraph, signal: usize) -> (Cover, Cover) {
    let n = graph.signals().len();
    let mut on_codes: Vec<u64> = (0..graph.state_count())
        .filter(|&s| graph.implied_value(s, signal))
        .map(|s| graph.code(s))
        .collect();
    on_codes.sort_unstable();
    on_codes.dedup();
    let to_values = |code: u64| -> Vec<bool> { (0..n).map(|k| code >> k & 1 == 1).collect() };
    let on_rows: Vec<Vec<bool>> = on_codes.iter().map(|&c| to_values(c)).collect();
    let on = Cover::from_minterms(n, on_rows.iter().map(Vec::as_slice));
    let mut all_codes: Vec<u64> = (0..graph.state_count()).map(|s| graph.code(s)).collect();
    all_codes.sort_unstable();
    all_codes.dedup();
    let all_rows: Vec<Vec<bool>> = all_codes.iter().map(|&c| to_values(c)).collect();
    let reachable = Cover::from_minterms(n, all_rows.iter().map(Vec::as_slice));
    (on, complement(&reachable))
}

fn bench_synthesised_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso-synth");
    group.sample_size(10);
    for name in ["wrdata", "atod", "mmu1"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let out = modular_resolve(&sg, &CscSolveOptions::default()).expect("resolves");
        let output = (0..out.graph.signals().len())
            .find(|&s| out.graph.signals()[s].kind.is_non_input())
            .expect("has outputs");
        let (on, dc) = covers_for(&out.graph, output);
        group.bench_function(name, |b| b.iter(|| minimize(&on, &dc)));
    }
    group.finish();
}

fn bench_random_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso-random");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        // Deterministic dense function: minterms with an odd bit-count mix.
        let minterms: Vec<Vec<bool>> = (0u32..(1 << n))
            .filter(|bits| (bits.wrapping_mul(0x9e37_79b9) >> 28) % 3 == 0)
            .map(|bits| (0..n).map(|v| bits >> v & 1 == 1).collect())
            .collect();
        let on = Cover::from_minterms(n, minterms.iter().map(Vec::as_slice));
        group.bench_function(format!("vars-{n}"), |b| {
            b.iter(|| minimize(&on, &Cover::empty(n)))
        });
    }
    group.finish();
}

fn bench_tautology_and_complement(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso-core-ops");
    let n = 10usize;
    let cubes: Vec<Cube> = (0..60u32)
        .map(|i| {
            let mut cube = Cube::full(n);
            let mut x = i.wrapping_mul(0x85eb_ca6b) | 1;
            for v in 0..n {
                x = x.wrapping_mul(0xc2b2_ae35).rotate_left(7);
                match x % 3 {
                    0 => cube.set_literal(v, Some(true)),
                    1 => cube.set_literal(v, Some(false)),
                    _ => {}
                }
            }
            cube
        })
        .collect();
    let cover = Cover::from_cubes(n, cubes);
    group.bench_function("complement-60x10", |b| b.iter(|| complement(&cover)));
    group.bench_function("tautology-60x10", |b| {
        b.iter(|| modsyn_logic::is_tautology(&cover))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_synthesised_functions,
    bench_random_functions,
    bench_tautology_and_complement
);
criterion_main!(benches);
