//! A1: decomposition ablation as a Criterion bench — time to solve the
//! modular formula set vs the single direct formula, per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use modsyn::{determine_input_set, encode_csc, modular_resolve, CscSolveOptions};
use modsyn_sat::{Solver, SolverOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn bench_input_set_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("input-set");
    for name in ["mmu0", "mr0"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let output = (0..sg.signals().len())
            .find(|&s| sg.signals()[s].kind.is_non_input())
            .expect("has outputs");
        group.bench_function(name, |b| {
            b.iter(|| determine_input_set(&sg, output).expect("derives input set"))
        });
    }
    group.finish();
}

fn bench_modular_vs_direct_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolve");
    group.sample_size(10);
    for name in ["mmu1", "vbe4a", "mmu0"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        group.bench_function(format!("modular/{name}"), |b| {
            b.iter(|| modular_resolve(&sg, &CscSolveOptions::default()).expect("resolves"))
        });
        let analysis = sg.csc_analysis();
        let encoding = encode_csc(&sg, &analysis, analysis.lower_bound.max(1));
        group.bench_function(format!("direct-first-formula/{name}"), |b| {
            b.iter(|| {
                Solver::new(
                    &encoding.formula,
                    SolverOptions {
                        max_backtracks: Some(modsyn_bench::TABLE1_BACKTRACK_LIMIT),
                        ..SolverOptions::default()
                    },
                )
                .solve()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_input_set_derivation,
    bench_modular_vs_direct_solve
);
criterion_main!(benches);
