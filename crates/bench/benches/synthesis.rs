//! E1/E4: end-to-end synthesis wall-clock, modular vs direct, per
//! benchmark — the Criterion counterpart of the `table1` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use modsyn::{synthesize, Method, SynthesisOptions};
use modsyn_sat::SolverOptions;
use modsyn_stg::benchmarks;

fn options(method: Method) -> SynthesisOptions {
    let mut o = SynthesisOptions::for_method(method);
    o.solver = SolverOptions {
        max_backtracks: Some(modsyn_bench::TABLE1_BACKTRACK_LIMIT),
        ..SolverOptions::default()
    };
    o
}

fn bench_modular(c: &mut Criterion) {
    let mut group = c.benchmark_group("modular");
    group.sample_size(10);
    for name in [
        "vbe-ex1",
        "nouse",
        "wrdata",
        "atod",
        "ram-read-sbuf",
        "mmu1",
        "mmu0",
        "mr0",
    ] {
        let stg = benchmarks::by_name(name).expect("known");
        group.bench_function(name, |b| {
            b.iter(|| synthesize(&stg, &options(Method::Modular)).expect("modular solves"))
        });
    }
    group.finish();
}

fn bench_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct");
    group.sample_size(10);
    // Rows the direct method solves within the Table-1 limit; the aborting
    // rows (mr0/mr1/mmu0) are measured by time-to-abort in `table1`.
    for name in [
        "vbe-ex1",
        "nouse",
        "wrdata",
        "atod",
        "ram-read-sbuf",
        "mmu1",
    ] {
        let stg = benchmarks::by_name(name).expect("known");
        group.bench_function(name, |b| {
            b.iter(|| synthesize(&stg, &options(Method::Direct)).expect("direct solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modular, bench_direct);
criterion_main!(benches);
