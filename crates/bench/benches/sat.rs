//! A2: SAT solver benchmarks — engines and heuristics on the CSC
//! encodings and on classic hard instances.

use criterion::{criterion_group, criterion_main, Criterion};
use modsyn::encode_csc;
use modsyn_sat::{CnfFormula, Heuristic, Lit, Solver, SolverOptions, Var};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn pigeonhole(holes: usize) -> CnfFormula {
    let pigeons = holes + 1;
    let mut f = CnfFormula::new(pigeons * holes);
    let var = |p: usize, h: usize| Var::new(p * holes + h);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
            }
        }
    }
    f
}

fn bench_csc_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat-csc");
    group.sample_size(10);
    for name in ["mmu1", "vbe4a", "pa"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let analysis = sg.csc_analysis();
        let encoding = encode_csc(&sg, &analysis, analysis.lower_bound.max(1));
        group.bench_function(format!("cdcl/{name}"), |b| {
            b.iter(|| Solver::new(&encoding.formula, SolverOptions::default()).solve())
        });
    }
    group.finish();
}

fn bench_engines_on_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat-php");
    group.sample_size(10);
    let f = pigeonhole(5);
    group.bench_function("cdcl", |b| {
        b.iter(|| Solver::new(&f, SolverOptions::default()).solve())
    });
    group.bench_function("chronological-jw", |b| {
        b.iter(|| {
            Solver::new(
                &f,
                SolverOptions {
                    learning: false,
                    heuristic: Heuristic::JeroslowWang,
                    ..Default::default()
                },
            )
            .solve()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_csc_encodings, bench_engines_on_pigeonhole);
criterion_main!(benches);
