//! Benchmarks for the extension substrates: BDD construction and
//! minimum-cost extraction, exact minimisation, multi-output sharing, and
//! FSM minimisation.

use criterion::{criterion_group, criterion_main, Criterion};
use modsyn::{encode_csc, minimise_states, modular_resolve, CscSolveOptions};
use modsyn_bdd::{build_from_cnf, BddManager};
use modsyn_logic::{minimize, minimize_exact, Cover, ExactLimits};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd");
    group.sample_size(10);
    for name in ["vbe-ex2", "nouse", "fifo"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let analysis = sg.csc_analysis();
        let m = analysis.lower_bound.max(1);
        let encoding = encode_csc(&sg, &analysis, m);
        group.bench_function(format!("build+mincost/{name}"), |b| {
            b.iter(|| {
                let mut mgr = BddManager::with_budget(encoding.formula.num_vars(), 2_000_000);
                let bdd = build_from_cnf(&mut mgr, &encoding.formula).expect("fits");
                let costs = vec![(0.0, 1.0); encoding.formula.num_vars()];
                mgr.min_cost_sat(bdd, &costs)
            })
        });
    }
    group.finish();
}

fn bench_exact_vs_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimise");
    group.sample_size(10);
    let n = 8usize;
    let minterms: Vec<Vec<bool>> = (0u32..(1 << n))
        .filter(|bits| (bits.wrapping_mul(0x9e37_79b9) >> 27) % 3 == 0)
        .map(|bits| (0..n).map(|v| bits >> v & 1 == 1).collect())
        .collect();
    let on = Cover::from_minterms(n, minterms.iter().map(Vec::as_slice));
    group.bench_function("heuristic-8var", |b| {
        b.iter(|| minimize(&on, &Cover::empty(n)))
    });
    group.bench_function("exact-8var", |b| {
        b.iter(|| minimize_exact(&on, &Cover::empty(n), &ExactLimits::default()))
    });
    group.finish();
}

fn bench_fsm_minimisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fsm");
    group.sample_size(10);
    for name in ["wrdata", "atod", "mmu1"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        group.bench_function(name, |b| b.iter(|| minimise_states(&sg, 20_000)));
    }
    group.finish();
}

fn bench_shared_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared-pla");
    group.sample_size(10);
    for name in ["wrdata", "mmu1"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        let out = modular_resolve(&sg, &CscSolveOptions::default()).expect("resolves");
        group.bench_function(name, |b| {
            b.iter(|| modsyn::derive_logic_shared(&out.graph).expect("derives"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bdd,
    bench_exact_vs_heuristic,
    bench_fsm_minimisation,
    bench_shared_pla
);
criterion_main!(benches);
