//! State-graph substrate benchmarks: derivation, CSC analysis and
//! quotient construction on the largest benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sg-derive");
    for name in ["mmu1", "mmu0", "mr1", "mr0"] {
        let stg = benchmarks::by_name(name).expect("known");
        group.bench_function(name, |b| {
            b.iter(|| derive(&stg, &DeriveOptions::default()).expect("derives"))
        });
    }
    group.finish();
}

fn bench_csc_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("sg-csc");
    for name in ["mmu0", "mr0"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        group.bench_function(name, |b| b.iter(|| sg.csc_analysis()));
    }
    group.finish();
}

fn bench_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("sg-quotient");
    for name in ["mmu0", "mr0"] {
        let stg = benchmarks::by_name(name).expect("known");
        let sg = derive(&stg, &DeriveOptions::default()).expect("derives");
        // Hide everything except the first two signals — the typical
        // modular-graph construction.
        let hidden: Vec<usize> = (2..sg.signals().len()).collect();
        group.bench_function(name, |b| {
            b.iter(|| sg.hide_signals(&hidden).expect("quotient builds"))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // State count grows as (6·beats + 1)^strands: the scaling knob behind
    // the mr family (mr0 = 3×1, mr1 = 2×2).
    let mut group = c.benchmark_group("sg-scaling");
    group.sample_size(10);
    for strands in [1usize, 2, 3] {
        let stg = benchmarks::master_read(strands, 1);
        group.bench_function(format!("master-read-{strands}x1"), |b| {
            b.iter(|| derive(&stg, &DeriveOptions::default()).expect("derives"))
        });
    }
    for stages in [4usize, 8, 16] {
        let stg = benchmarks::pipeline(stages);
        group.bench_function(format!("pipeline-{stages}"), |b| {
            b.iter(|| derive(&stg, &DeriveOptions::default()).expect("derives"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_derivation,
    bench_csc_analysis,
    bench_quotient,
    bench_scaling
);
criterion_main!(benches);
