//! A persistent, structurally-shared hash map.
//!
//! The store's namespaces are [`ChunkedMap`]s: the key space is split into
//! a fixed number of chunks, each an `Arc<HashMap>`. Cloning the map clones
//! only the chunk *pointers* (64 `Arc` bumps), so a [`crate::Snapshot`] of
//! a store holding thousands of entries costs nanoseconds and shares every
//! byte of payload with the live map. An insert copies exactly one chunk
//! (clone-on-write via [`Arc::make_mut`]); the other 63 stay shared with
//! every outstanding snapshot.

use std::collections::HashMap;
use std::sync::Arc;

/// Number of chunks every [`ChunkedMap`] is split into.
pub const CHUNK_COUNT: usize = 64;

/// A persistent map from `u64` digests to `Arc`-shared values.
#[derive(Debug, Clone)]
pub struct ChunkedMap<V> {
    chunks: Vec<Arc<HashMap<u64, Arc<V>>>>,
}

impl<V> Default for ChunkedMap<V> {
    fn default() -> Self {
        ChunkedMap::new()
    }
}

impl<V> ChunkedMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        ChunkedMap {
            chunks: (0..CHUNK_COUNT).map(|_| Arc::new(HashMap::new())).collect(),
        }
    }

    fn chunk_of(key: u64) -> usize {
        // Keys are FNV digests, already well mixed; the low bits pick the
        // chunk.
        (key % CHUNK_COUNT as u64) as usize
    }

    /// Looks up a key, sharing the stored value.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        self.chunks[Self::chunk_of(key)].get(&key).cloned()
    }

    /// Inserts (or replaces) a value, copying only the affected chunk.
    /// Returns `true` when the key was new.
    pub fn insert(&mut self, key: u64, value: V) -> bool {
        let chunk = Arc::make_mut(&mut self.chunks[Self::chunk_of(key)]);
        chunk.insert(key, Arc::new(value)).is_none()
    }

    /// Number of entries across all chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|c| c.is_empty())
    }

    /// All entries, sorted by key (for deterministic serialization).
    pub fn entries(&self) -> Vec<(u64, Arc<V>)> {
        let mut out: Vec<(u64, Arc<V>)> = self
            .chunks
            .iter()
            .flat_map(|c| c.iter().map(|(&k, v)| (k, v.clone())))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Whether chunk `i` is physically shared with `other` (same `Arc`).
    /// Exposed so tests can pin the structural-sharing guarantee.
    pub fn shares_chunk(&self, other: &Self, i: usize) -> bool {
        Arc::ptr_eq(&self.chunks[i], &other.chunks[i])
    }

    /// Keys added, removed or changed going from `self` to `newer`.
    /// Chunks still shared between the two are skipped without touching
    /// their entries, so diffing adjacent snapshots is proportional to the
    /// *edit*, not the store size.
    pub fn diff(&self, newer: &Self) -> MapDiff {
        let mut diff = MapDiff::default();
        for i in 0..CHUNK_COUNT {
            if Arc::ptr_eq(&self.chunks[i], &newer.chunks[i]) {
                continue;
            }
            let (old, new) = (&self.chunks[i], &newer.chunks[i]);
            for (&k, v) in new.iter() {
                match old.get(&k) {
                    None => diff.added.push(k),
                    Some(o) if !Arc::ptr_eq(o, v) => diff.changed.push(k),
                    Some(_) => {}
                }
            }
            for &k in old.keys() {
                if !new.contains_key(&k) {
                    diff.removed.push(k);
                }
            }
        }
        diff.added.sort_unstable();
        diff.removed.sort_unstable();
        diff.changed.sort_unstable();
        diff
    }
}

/// Key-level difference between two [`ChunkedMap`] versions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapDiff {
    /// Keys present only in the newer map.
    pub added: Vec<u64>,
    /// Keys present only in the older map.
    pub removed: Vec<u64>,
    /// Keys present in both but pointing at different values.
    pub changed: Vec<u64>,
}

impl MapDiff {
    /// Whether the two versions were identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_roundtrip() {
        let mut map = ChunkedMap::new();
        assert!(map.is_empty());
        assert!(map.insert(7, "seven".to_string()));
        assert!(map.insert(7 + CHUNK_COUNT as u64, "seventy-one".to_string()));
        assert!(!map.insert(7, "seven again".to_string()));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(7).unwrap().as_str(), "seven again");
        assert!(map.get(8).is_none());
    }

    #[test]
    fn clone_shares_all_chunks_and_insert_copies_one() {
        let mut map = ChunkedMap::new();
        for k in 0..200u64 {
            map.insert(k, k);
        }
        let snapshot = map.clone();
        for i in 0..CHUNK_COUNT {
            assert!(map.shares_chunk(&snapshot, i));
        }
        map.insert(1000, 1000); // chunk 1000 % 64 == 40
        let touched = ChunkedMap::<u64>::chunk_of(1000);
        for i in 0..CHUNK_COUNT {
            assert_eq!(map.shares_chunk(&snapshot, i), i != touched, "chunk {i}");
        }
        // The snapshot still sees the old state.
        assert!(snapshot.get(1000).is_none());
        assert_eq!(*map.get(1000).unwrap(), 1000);
    }

    #[test]
    fn diff_reports_added_removed_changed() {
        let mut old = ChunkedMap::new();
        old.insert(1, 10u64);
        old.insert(2, 20);
        let mut new = old.clone();
        new.insert(2, 21); // changed
        new.insert(3, 30); // added
        let diff = old.diff(&new);
        assert_eq!(diff.added, vec![3]);
        assert_eq!(diff.changed, vec![2]);
        assert!(diff.removed.is_empty());
        assert!(old.diff(&old.clone()).is_empty());
        // Reverse direction: the addition becomes a removal.
        assert_eq!(new.diff(&old).removed, vec![3]);
    }
}
