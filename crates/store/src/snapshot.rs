//! Durable snapshot (de)serialization.
//!
//! `modsynd --store-snapshot PATH` persists the store on graceful drain and
//! reloads it at start, so a restarted daemon answers its warm traffic from
//! the first request. The format is a single deterministic JSON document:
//! both namespaces key-sorted, module keys and digests as hex strings, and
//! `Quat` assignment values packed as one character each (`0`, `1`, `u`,
//! `d`). The daemon's response-cache bodies ride along so even the
//! byte-level HTTP cache survives a restart.

use modsyn_obs::Json;
use modsyn_sat::SolverStats;
use modsyn_sg::{Quat, StateSignalAssignment};

use crate::provenance::{ClauseFamilies, ModuleEntry, Provenance, StoredFormula, SynthRecord};
use crate::store::{Snapshot, SynthStore};

/// Snapshot format version; bump on breaking layout changes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Everything a snapshot document holds, decoded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotData {
    /// Module solves, keyed by content key.
    pub modules: Vec<(u64, ModuleEntry)>,
    /// Synthesis records, keyed by STG digest.
    pub records: Vec<(u64, SynthRecord)>,
    /// Serving-layer response-cache entries `(cache key, body)`; empty when
    /// the snapshot was taken outside the daemon.
    pub responses: Vec<(u128, String)>,
    /// Highest journal sequence number this snapshot covers (0 when the
    /// snapshot was written outside the write-ahead-journal machinery).
    /// Recovery replays only journal frames *above* this point.
    pub wal_seq: u64,
}

/// Renders a snapshot (plus optional serving-layer response bodies) to the
/// durable JSON document.
pub fn snapshot_to_json(snap: &Snapshot, responses: &[(u128, String)]) -> Json {
    snapshot_doc(snap, responses, 0)
}

/// [`snapshot_to_json`] with an explicit journal watermark: the document
/// records that every journal frame with `seq <= wal_seq` is already folded
/// into the snapshot, so recovery replays only the suffix.
pub fn snapshot_doc(snap: &Snapshot, responses: &[(u128, String)], wal_seq: u64) -> Json {
    Json::obj([
        ("version", Json::from(SNAPSHOT_VERSION)),
        ("seq", Json::from(snap.seq)),
        ("wal_seq", Json::from(wal_seq)),
        (
            "modules",
            Json::Arr(
                snap.modules()
                    .iter()
                    .map(|(k, e)| module_to_json(*k, e.as_ref()))
                    .collect(),
            ),
        ),
        (
            "records",
            Json::Arr(
                snap.records()
                    .iter()
                    .map(|(d, r)| record_to_json(*d, r.as_ref()))
                    .collect(),
            ),
        ),
        (
            "responses",
            Json::Arr(
                responses
                    .iter()
                    .map(|(k, body)| {
                        Json::obj([
                            ("key", Json::Str(format!("{k:032x}"))),
                            ("body", Json::Str(body.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a snapshot document produced by [`snapshot_to_json`].
///
/// # Errors
///
/// Returns a human-readable message on version mismatch or any missing /
/// mistyped field.
pub fn snapshot_from_json(doc: &Json) -> Result<SnapshotData, String> {
    let version = uint(doc, "version")?;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
        ));
    }
    let mut data = SnapshotData {
        // Absent in pre-journal documents; those cover no frames.
        wal_seq: doc
            .get("wal_seq")
            .and_then(Json::as_f64)
            .map_or(0, |v| v as u64),
        ..SnapshotData::default()
    };
    for item in arr(doc, "modules")? {
        let key = hex64(item, "key")?;
        data.modules.push((key, module_from_json(item)?));
    }
    for item in arr(doc, "records")? {
        let digest = hex64(item, "digest")?;
        data.records.push((digest, record_from_json(item)?));
    }
    for item in arr(doc, "responses")? {
        let key = str_field(item, "key")?;
        let key =
            u128::from_str_radix(key, 16).map_err(|_| format!("bad response cache key `{key}`"))?;
        data.responses
            .push((key, str_field(item, "body")?.to_string()));
    }
    Ok(data)
}

/// Loads decoded module and record entries into a live store (response
/// entries are the serving layer's business).
pub fn restore_into(store: &SynthStore, data: &SnapshotData) {
    for (key, entry) in &data.modules {
        store.put_module(*key, entry.clone());
    }
    for (digest, record) in &data.records {
        store.put_record(*digest, record.clone());
    }
}

pub(crate) fn module_to_json(key: u64, entry: &ModuleEntry) -> Json {
    Json::obj([
        ("key", Json::Str(format!("{key:016x}"))),
        (
            "assignments",
            Json::Arr(entry.assignments.iter().map(assignment_to_json).collect()),
        ),
        (
            "formulas",
            Json::Arr(entry.formulas.iter().map(formula_to_json).collect()),
        ),
        (
            "provenance",
            Json::Arr(entry.provenance.iter().map(provenance_to_json).collect()),
        ),
    ])
}

pub(crate) fn module_from_json(doc: &Json) -> Result<ModuleEntry, String> {
    Ok(ModuleEntry {
        assignments: arr(doc, "assignments")?
            .iter()
            .map(assignment_from_json)
            .collect::<Result<_, _>>()?,
        formulas: arr(doc, "formulas")?
            .iter()
            .map(formula_from_json)
            .collect::<Result<_, _>>()?,
        provenance: arr(doc, "provenance")?
            .iter()
            .map(provenance_from_json)
            .collect::<Result<_, _>>()?,
    })
}

pub(crate) fn record_to_json(digest: u64, record: &SynthRecord) -> Json {
    Json::obj([
        ("digest", Json::Str(format!("{digest:016x}"))),
        ("benchmark", Json::Str(record.benchmark.clone())),
        (
            "inserted",
            Json::Arr(
                record
                    .inserted
                    .iter()
                    .map(|s| Json::Str(s.clone()))
                    .collect(),
            ),
        ),
        (
            "provenance",
            Json::Arr(record.provenance.iter().map(provenance_to_json).collect()),
        ),
    ])
}

pub(crate) fn record_from_json(doc: &Json) -> Result<SynthRecord, String> {
    Ok(SynthRecord {
        benchmark: str_field(doc, "benchmark")?.to_string(),
        inserted: arr(doc, "inserted")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "inserted entries must be strings".to_string())
            })
            .collect::<Result<_, _>>()?,
        provenance: arr(doc, "provenance")?
            .iter()
            .map(provenance_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn assignment_to_json(a: &StateSignalAssignment) -> Json {
    let values: String = a
        .values
        .iter()
        .map(|q| match q {
            Quat::Zero => '0',
            Quat::One => '1',
            Quat::Up => 'u',
            Quat::Down => 'd',
        })
        .collect();
    Json::obj([
        ("name", Json::Str(a.name.clone())),
        ("values", Json::Str(values)),
    ])
}

fn assignment_from_json(doc: &Json) -> Result<StateSignalAssignment, String> {
    let values = str_field(doc, "values")?
        .chars()
        .map(|c| match c {
            '0' => Ok(Quat::Zero),
            '1' => Ok(Quat::One),
            'u' => Ok(Quat::Up),
            'd' => Ok(Quat::Down),
            other => Err(format!("bad quat character `{other}`")),
        })
        .collect::<Result<_, _>>()?;
    Ok(StateSignalAssignment {
        name: str_field(doc, "name")?.to_string(),
        values,
    })
}

/// Field order here is the wire contract; `solver_from_json` reads the same
/// nine [`SolverStats`] counters back.
fn formula_to_json(f: &StoredFormula) -> Json {
    Json::obj([
        ("state_signals", Json::from(f.state_signals)),
        ("clauses", Json::from(f.clauses)),
        ("variables", Json::from(f.variables)),
        ("satisfiable", Json::from(f.satisfiable)),
        (
            "solver",
            Json::obj([
                ("decisions", Json::from(f.solver.decisions)),
                ("propagations", Json::from(f.solver.propagations)),
                ("backtracks", Json::from(f.solver.backtracks)),
                ("conflicts", Json::from(f.solver.conflicts)),
                ("learned_clauses", Json::from(f.solver.learned_clauses)),
                ("learned_literals", Json::from(f.solver.learned_literals)),
                ("restarts", Json::from(f.solver.restarts)),
                ("peak_clauses", Json::from(f.solver.peak_clauses)),
                ("max_level", Json::from(f.solver.max_level)),
            ]),
        ),
    ])
}

fn formula_from_json(doc: &Json) -> Result<StoredFormula, String> {
    let solver = doc
        .get("solver")
        .ok_or_else(|| "formula missing `solver`".to_string())?;
    Ok(StoredFormula {
        state_signals: uint(doc, "state_signals")? as usize,
        clauses: uint(doc, "clauses")? as usize,
        variables: uint(doc, "variables")? as usize,
        satisfiable: bool_field(doc, "satisfiable")?,
        solver: SolverStats {
            decisions: uint(solver, "decisions")?,
            propagations: uint(solver, "propagations")?,
            backtracks: uint(solver, "backtracks")?,
            conflicts: uint(solver, "conflicts")?,
            learned_clauses: uint(solver, "learned_clauses")?,
            learned_literals: uint(solver, "learned_literals")?,
            restarts: uint(solver, "restarts")?,
            peak_clauses: uint(solver, "peak_clauses")? as usize,
            max_level: uint(solver, "max_level")? as usize,
        },
    })
}

fn provenance_to_json(p: &Provenance) -> Json {
    Json::obj([
        ("signal", Json::Str(p.signal.clone())),
        ("module_output", Json::Str(p.module_output.clone())),
        ("module_key", Json::Str(format!("{:016x}", p.module_key))),
        (
            "resolved_pairs",
            Json::Arr(
                p.resolved_pairs
                    .iter()
                    .map(|&(a, b)| Json::Arr(vec![Json::from(a), Json::from(b)]))
                    .collect(),
            ),
        ),
        ("state_signals", Json::from(p.state_signals)),
        ("variables", Json::from(p.variables)),
        ("clauses", Json::from(p.clauses)),
        (
            "families",
            Json::obj([
                ("consistency", Json::from(p.families.consistency)),
                ("persistence", Json::from(p.families.persistence)),
                ("usc", Json::from(p.families.usc)),
                ("resolution", Json::from(p.families.resolution)),
            ]),
        ),
    ])
}

fn provenance_from_json(doc: &Json) -> Result<Provenance, String> {
    let families = doc
        .get("families")
        .ok_or_else(|| "provenance missing `families`".to_string())?;
    Ok(Provenance {
        signal: str_field(doc, "signal")?.to_string(),
        module_output: str_field(doc, "module_output")?.to_string(),
        module_key: hex64(doc, "module_key")?,
        resolved_pairs: arr(doc, "resolved_pairs")?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .ok_or_else(|| "resolved pair must be an array".to_string())?;
                match items {
                    [a, b] => Ok((
                        a.as_f64().ok_or("bad pair index")? as usize,
                        b.as_f64().ok_or("bad pair index")? as usize,
                    )),
                    _ => Err("resolved pair must have two indices".to_string()),
                }
            })
            .collect::<Result<_, _>>()?,
        state_signals: uint(doc, "state_signals")? as usize,
        variables: uint(doc, "variables")? as usize,
        clauses: uint(doc, "clauses")? as usize,
        families: ClauseFamilies {
            consistency: uint(families, "consistency")? as usize,
            persistence: uint(families, "persistence")? as usize,
            usc: uint(families, "usc")? as usize,
            resolution: uint(families, "resolution")? as usize,
        },
    })
}

fn arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array `{key}`"))
}

pub(crate) fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn uint(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing number `{key}`"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool `{key}`")),
    }
}

pub(crate) fn hex64(doc: &Json, key: &str) -> Result<u64, String> {
    let text = str_field(doc, key)?;
    u64::from_str_radix(text, 16).map_err(|_| format!("bad hex `{key}`: `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_obs::parse_json;

    fn sample_store() -> SynthStore {
        let store = SynthStore::new();
        store.put_module(
            0xdead_beef,
            ModuleEntry {
                assignments: vec![StateSignalAssignment {
                    name: "csc0".into(),
                    values: vec![Quat::Zero, Quat::Up, Quat::One, Quat::Down],
                }],
                formulas: vec![StoredFormula {
                    state_signals: 1,
                    clauses: 42,
                    variables: 8,
                    satisfiable: true,
                    solver: SolverStats {
                        decisions: 3,
                        propagations: 17,
                        backtracks: 1,
                        conflicts: 1,
                        learned_clauses: 1,
                        learned_literals: 2,
                        restarts: 0,
                        peak_clauses: 44,
                        max_level: 5,
                    },
                }],
                provenance: vec![Provenance {
                    signal: "csc0".into(),
                    module_output: "y".into(),
                    module_key: 0xdead_beef,
                    resolved_pairs: vec![(0, 2)],
                    state_signals: 1,
                    variables: 8,
                    clauses: 42,
                    families: ClauseFamilies {
                        consistency: 30,
                        persistence: 4,
                        usc: 6,
                        resolution: 2,
                    },
                }],
            },
        );
        store.put_record(
            0x1234,
            SynthRecord {
                benchmark: "vbe-ex1".into(),
                inserted: vec!["csc0".into()],
                provenance: Vec::new(),
            },
        );
        store
    }

    #[test]
    fn snapshot_round_trips_through_json_text() {
        let store = sample_store();
        let snap = store.snapshot();
        let responses = vec![(0xabc_u128, "{\"certified\":true}\n".to_string())];
        let doc = snapshot_to_json(&snap, &responses);
        let text = doc.pretty();
        let parsed = parse_json(&text).unwrap();
        let data = snapshot_from_json(&parsed).unwrap();

        assert_eq!(data.modules.len(), 1);
        assert_eq!(data.records.len(), 1);
        assert_eq!(data.responses, responses);
        let entry = &data.modules[0].1;
        assert_eq!(
            *entry,
            *store.get_module(0xdead_beef).unwrap(),
            "module entry must survive the round trip bit-for-bit"
        );
        assert_eq!(data.records[0].1.benchmark, "vbe-ex1");

        // Restoring into a fresh store reproduces the same snapshot text.
        let fresh = SynthStore::new();
        restore_into(&fresh, &data);
        let again = snapshot_to_json(&fresh.snapshot(), &responses).pretty();
        assert_eq!(text, again);
    }

    #[test]
    fn version_and_field_errors_are_reported() {
        let doc = parse_json("{\"version\": 99}").unwrap();
        let err = snapshot_from_json(&doc).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        let doc = parse_json("{\"version\": 1, \"modules\": [{}]}").unwrap();
        assert!(snapshot_from_json(&doc).is_err());
    }
}
