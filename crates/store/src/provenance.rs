//! What the store remembers about *why* a state signal exists.
//!
//! Every inserted state signal is the output of one SAT-CSC solve over one
//! module (or the final residual pass). The [`Provenance`] record ties the
//! signal back to the conflict pairs it resolves and the clause families of
//! the formula that forced it — the "explain" chain served by
//! `GET /explain` and `modsyn --explain`.

use modsyn_sat::SolverStats;
use modsyn_sg::StateSignalAssignment;

/// Clause counts of the winning CSC formula, split by the paper's families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClauseFamilies {
    /// Family 1: edge consistency / semi-modularity clauses.
    pub consistency: usize,
    /// Family 1.5: persistence clauses over concurrency diamonds.
    pub persistence: usize,
    /// Family 3: no-new-conflict clauses on USC pairs.
    pub usc: usize,
    /// Family 2: CSC resolution clauses for the targeted conflict pairs.
    pub resolution: usize,
}

impl ClauseFamilies {
    /// Total clauses across the four families.
    pub fn total(&self) -> usize {
        self.consistency + self.persistence + self.usc + self.resolution
    }
}

/// Why one inserted state signal exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Name of the inserted state signal (e.g. `csc0`).
    pub signal: String,
    /// Output signal whose module inserted it, or `"<residual>"` for the
    /// final complete-graph cleanup pass.
    pub module_output: String,
    /// Content key of the module solve that produced it (0 when the run
    /// had no store attached).
    pub module_key: u64,
    /// The CSC conflict pairs (module-local state indices) this signal
    /// resolves: both states stable with opposite values.
    pub resolved_pairs: Vec<(usize, usize)>,
    /// State signals (`m`) in the winning formula.
    pub state_signals: usize,
    /// Variables in the winning formula.
    pub variables: usize,
    /// Clauses in the winning formula.
    pub clauses: usize,
    /// Winning formula's clause counts by family.
    pub families: ClauseFamilies,
}

/// Mirror of `modsyn::FormulaStat` (the store sits below `modsyn-core`, so
/// it keeps its own copy; the fields are identical and the conversion in
/// `modular.rs` is field-by-field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoredFormula {
    /// Number of state signals attempted.
    pub state_signals: usize,
    /// Clauses in the formula.
    pub clauses: usize,
    /// Variables in the formula.
    pub variables: usize,
    /// Whether this formula was satisfiable.
    pub satisfiable: bool,
    /// SAT solver counters for the attempt.
    pub solver: SolverStats,
}

/// One cached module solve: everything `modular_resolve` needs to skip the
/// SAT call and still produce a byte-identical outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleEntry {
    /// The state-signal assignments over the module's quotient states.
    pub assignments: Vec<StateSignalAssignment>,
    /// Formula statistics of every attempt (replayed into the report).
    pub formulas: Vec<StoredFormula>,
    /// Provenance of each inserted signal.
    pub provenance: Vec<Provenance>,
}

/// One cached synthesis outcome, keyed by the STG's content digest — the
/// index behind `GET /explain?digest=…`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthRecord {
    /// Benchmark (STG model) name.
    pub benchmark: String,
    /// Inserted state signals, in insertion order.
    pub inserted: Vec<String>,
    /// Provenance of every inserted signal.
    pub provenance: Vec<Provenance>,
}
