//! The store's append-only write-ahead journal.
//!
//! Every store/cache mutation the daemon wants to survive a `kill -9` is
//! appended here as one **frame** before it is applied in memory:
//!
//! ```text
//! file   := header frame*
//! header := "modsyn-wal/1\n"                    (13 bytes)
//! frame  := len:u32le seq:u64le check:u64le payload[len]
//! check  := fnv1a64(payload) ^ seq
//! ```
//!
//! The payload is one compact JSON [`StoreMutation`]. Frames carry a
//! monotonic sequence number so a checkpoint can record "everything up to
//! seq N is in the snapshot" and recovery replays only the suffix.
//!
//! ## Torn tails
//!
//! A crash (or an injected `store.wal-torn-write` fault) can leave a
//! half-written frame at the end of the file. [`scan_wal`] is therefore a
//! *prefix* parser: it yields every frame up to the first one that is
//! short, fails its checksum, or does not decode, and reports what it
//! discarded in a [`WalScan`]. It never panics on any byte sequence — the
//! journal-recovery property test feeds it every truncation point of
//! random journals. [`Wal::open`] truncates the file back to the valid
//! prefix before appending, so one torn tail never cascades.
//!
//! Durability is a configurable cadence: `fsync_every = 1` syncs every
//! append (what the chaos matrix runs under), larger values trade the
//! tail of the journal for throughput.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use modsyn_fault::{site, FaultHook, Faults};
use modsyn_obs::{parse_json, Json};
use modsyn_stg::fnv1a64;

use crate::provenance::{ModuleEntry, SynthRecord};
use crate::snapshot::{self, SnapshotData};

/// Magic line starting every journal file.
pub const WAL_HEADER: &[u8] = b"modsyn-wal/1\n";

/// Frames larger than this are treated as tail garbage, not allocated.
const MAX_FRAME: u32 = 64 << 20;

/// One durable store/cache mutation, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreMutation {
    /// A module solve landed under its content key.
    Module {
        /// Content key ([`crate::module_key`]).
        key: u64,
        /// The solve.
        entry: ModuleEntry,
    },
    /// A synthesis record landed under digest ⊕ method.
    Record {
        /// Record key.
        digest: u64,
        /// The record.
        record: SynthRecord,
    },
    /// A certified response body entered the serving-layer cache.
    Response {
        /// Response-cache key.
        key: u128,
        /// The certified body, verbatim.
        body: String,
    },
}

impl StoreMutation {
    /// Compact JSON payload for one frame.
    pub fn to_json(&self) -> Json {
        match self {
            StoreMutation::Module { key, entry } => {
                let mut doc = snapshot::module_to_json(*key, entry);
                tag(&mut doc, "module")
            }
            StoreMutation::Record { digest, record } => {
                let mut doc = snapshot::record_to_json(*digest, record);
                tag(&mut doc, "record")
            }
            StoreMutation::Response { key, body } => Json::obj([
                ("op", Json::from("response")),
                ("key", Json::Str(format!("{key:032x}"))),
                ("body", Json::Str(body.clone())),
            ]),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown op or malformed fields.
    pub fn from_json(doc: &Json) -> Result<StoreMutation, String> {
        match snapshot::str_field(doc, "op")? {
            "module" => Ok(StoreMutation::Module {
                key: snapshot::hex64(doc, "key")?,
                entry: snapshot::module_from_json(doc)?,
            }),
            "record" => Ok(StoreMutation::Record {
                digest: snapshot::hex64(doc, "digest")?,
                record: snapshot::record_from_json(doc)?,
            }),
            "response" => {
                let key = snapshot::str_field(doc, "key")?;
                let key = u128::from_str_radix(key, 16)
                    .map_err(|_| format!("bad response cache key `{key}`"))?;
                Ok(StoreMutation::Response {
                    key,
                    body: snapshot::str_field(doc, "body")?.to_string(),
                })
            }
            other => Err(format!("unknown journal op `{other}`")),
        }
    }

    /// Folds this mutation into decoded snapshot data (last write wins),
    /// exactly what replaying it into a live store would do.
    pub fn apply_to(&self, data: &mut SnapshotData) {
        match self {
            StoreMutation::Module { key, entry } => {
                data.modules.retain(|(k, _)| k != key);
                data.modules.push((*key, entry.clone()));
            }
            StoreMutation::Record { digest, record } => {
                data.records.retain(|(d, _)| d != digest);
                data.records.push((*digest, record.clone()));
            }
            StoreMutation::Response { key, body } => {
                data.responses.retain(|(k, _)| k != key);
                data.responses.push((*key, body.clone()));
            }
        }
    }
}

/// Prepends `("op", name)` to an object document.
fn tag(doc: &mut Json, name: &str) -> Json {
    if let Json::Obj(pairs) = doc {
        pairs.insert(0, ("op".to_string(), Json::from(name)));
    }
    std::mem::replace(doc, Json::Null)
}

/// Serialises one frame (length prefix, seq, checksum, payload).
pub fn encode_frame(seq: u64, mutation: &StoreMutation) -> Vec<u8> {
    let payload = mutation.to_json().to_string().into_bytes();
    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(fnv1a64(&payload) ^ seq).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// What a journal scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalScan {
    /// Frames decoded (the valid prefix).
    pub frames: u64,
    /// 1 when a torn/garbage tail frame stopped the scan (short frame,
    /// over-long length, bad header, undecodable payload).
    pub frames_truncated: u64,
    /// 1 when the stopping frame specifically failed its checksum.
    pub checksum_failures: u64,
    /// Bytes past the valid prefix, discarded.
    pub bytes_truncated: u64,
    /// File offset of the end of the valid prefix (where appends resume).
    pub valid_len: u64,
    /// Highest sequence number among decoded frames.
    pub last_seq: u64,
}

/// Parses the valid prefix of a journal file's bytes. Total: any input —
/// including every possible truncation of a valid journal — yields a
/// (possibly empty) frame list and a scan report; nothing panics.
pub fn scan_bytes(bytes: &[u8]) -> (Vec<(u64, StoreMutation)>, WalScan) {
    let mut scan = WalScan::default();
    let mut frames = Vec::new();
    if bytes.len() < WAL_HEADER.len() || &bytes[..WAL_HEADER.len()] != WAL_HEADER {
        // Not our file (or a crash inside the 13-byte header write):
        // nothing is salvageable, but the caller still gets a report.
        scan.frames_truncated = u64::from(!bytes.is_empty());
        scan.bytes_truncated = bytes.len() as u64;
        return (frames, scan);
    }
    let mut at = WAL_HEADER.len();
    scan.valid_len = at as u64;
    while at < bytes.len() {
        let rest = &bytes[at..];
        let Some(frame) = decode_frame(rest, &mut scan) else {
            scan.frames_truncated = 1;
            scan.bytes_truncated = rest.len() as u64;
            break;
        };
        let (used, seq, mutation) = frame;
        at += used;
        scan.frames += 1;
        scan.valid_len = at as u64;
        scan.last_seq = scan.last_seq.max(seq);
        frames.push((seq, mutation));
    }
    (frames, scan)
}

/// Decodes one frame at the start of `rest`; `None` marks the torn tail.
fn decode_frame(rest: &[u8], scan: &mut WalScan) -> Option<(usize, u64, StoreMutation)> {
    if rest.len() < 20 {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().ok()?);
    if len > MAX_FRAME {
        return None;
    }
    let seq = u64::from_le_bytes(rest[4..12].try_into().ok()?);
    let check = u64::from_le_bytes(rest[12..20].try_into().ok()?);
    let end = 20usize.checked_add(len as usize)?;
    if rest.len() < end {
        return None;
    }
    let payload = &rest[20..end];
    if fnv1a64(payload) ^ seq != check {
        scan.checksum_failures = 1;
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let doc = parse_json(text).ok()?;
    let mutation = StoreMutation::from_json(&doc).ok()?;
    Some((end, seq, mutation))
}

/// Reads and scans a journal file; a missing file is an empty journal.
///
/// # Errors
///
/// Real I/O failures only — torn tails and garbage are reported in the
/// [`WalScan`], not as errors.
pub fn scan_wal(path: &Path) -> std::io::Result<(Vec<(u64, StoreMutation)>, WalScan)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() {
        return Ok((Vec::new(), WalScan::default()));
    }
    Ok(scan_bytes(&bytes))
}

struct WalFile {
    file: File,
    next_seq: u64,
    unsynced: u64,
    since_checkpoint: u64,
}

/// The append handle. One mutex around the file keeps frames whole under
/// concurrent appenders; counters are atomics so `/metrics` scrapes
/// without taking the write lock.
#[derive(Debug)]
pub struct Wal {
    inner: Mutex<WalFile>,
    fsync_every: u64,
    faults: Faults,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    torn_injected: AtomicU64,
}

impl std::fmt::Debug for WalFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalFile")
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if needed) the journal for appending, truncating any
    /// torn tail back to the valid prefix first. `next_seq` is where new
    /// frames number from — recovery passes `max(snapshot.wal_seq,
    /// scan.last_seq) + 1`.
    ///
    /// # Errors
    ///
    /// File creation/seek failures.
    pub fn open(
        path: &Path,
        next_seq: u64,
        valid_len: u64,
        fsync_every: u64,
        faults: Faults,
    ) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        if valid_len < WAL_HEADER.len() as u64 {
            file.set_len(0)?;
            file.write_all(WAL_HEADER)?;
        } else {
            // Drop the torn tail so the next scan sees only whole frames.
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        file.sync_all()?;
        Ok(Wal {
            inner: Mutex::new(WalFile {
                file,
                next_seq: next_seq.max(1),
                unsynced: 0,
                since_checkpoint: 0,
            }),
            fsync_every: fsync_every.max(1),
            faults,
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            torn_injected: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, WalFile> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one frame (write-ahead: call this *before* applying the
    /// mutation in memory) and returns its sequence number. Under an armed
    /// `store.wal-torn-write` fault only half the frame reaches the file —
    /// the simulated crash recovery later truncates.
    ///
    /// # Errors
    ///
    /// Write/sync failures.
    pub fn append(&self, mutation: &StoreMutation) -> std::io::Result<u64> {
        let mut w = self.lock();
        let seq = w.next_seq;
        w.next_seq += 1;
        let frame = encode_frame(seq, mutation);
        let torn = self.faults.fire(site::STORE_WAL_TORN_WRITE);
        let bytes = if torn {
            self.torn_injected.fetch_add(1, Ordering::Relaxed);
            &frame[..frame.len() / 2]
        } else {
            &frame[..]
        };
        w.file.write_all(bytes)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        w.unsynced += 1;
        w.since_checkpoint += 1;
        if w.unsynced >= self.fsync_every {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(seq)
    }

    /// Forces any unsynced frames to disk.
    ///
    /// # Errors
    ///
    /// The sync failure verbatim.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut w = self.lock();
        if w.unsynced > 0 {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Frames appended since the last checkpoint (compaction trigger).
    pub fn since_checkpoint(&self) -> u64 {
        self.lock().since_checkpoint
    }

    /// Frames appended over this handle's life.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// fsync(2) calls issued.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Torn appends injected by the fault plane.
    pub fn torn_injected(&self) -> u64 {
        self.torn_injected.load(Ordering::Relaxed)
    }

    /// Runs a checkpoint under the journal lock, so no appends interleave
    /// anywhere in the sequence: `f` (given the last sequence number handed
    /// out) snapshots the live state and returns the watermark it covered;
    /// the journal is then rewritten keeping only the frames *above* that
    /// watermark. Frames at or below it are in the snapshot by
    /// construction — the watermark is the applied frontier, and applying
    /// happens before the snapshot closure runs.
    ///
    /// # Errors
    ///
    /// Journal I/O failures, or whatever `f` returns.
    pub(crate) fn checkpoint_with(
        &self,
        f: impl FnOnce(u64) -> std::io::Result<u64>,
    ) -> std::io::Result<()> {
        let mut w = self.lock();
        w.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        w.file.read_to_end(&mut bytes)?;
        let (frames, _scan) = scan_bytes(&bytes);
        let covered = f(w.next_seq - 1)?;
        let mut rewrite = WAL_HEADER.to_vec();
        let mut kept = 0u64;
        for (seq, mutation) in &frames {
            if *seq > covered {
                rewrite.extend_from_slice(&encode_frame(*seq, mutation));
                kept += 1;
            }
        }
        w.file.set_len(0)?;
        w.file.seek(SeekFrom::Start(0))?;
        w.file.write_all(&rewrite)?;
        w.file.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        w.unsynced = 0;
        w.since_checkpoint = kept;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::StoredFormula;

    fn module(n: usize) -> StoreMutation {
        StoreMutation::Module {
            key: n as u64,
            entry: ModuleEntry {
                assignments: Vec::new(),
                formulas: vec![StoredFormula {
                    state_signals: n,
                    ..Default::default()
                }],
                provenance: Vec::new(),
            },
        }
    }

    #[test]
    fn mutations_round_trip_through_frame_payloads() {
        let cases = [
            module(3),
            StoreMutation::Record {
                digest: 0xfeed,
                record: SynthRecord {
                    benchmark: "b".into(),
                    inserted: vec!["csc0".into()],
                    provenance: Vec::new(),
                },
            },
            StoreMutation::Response {
                key: 0xdead_beef_dead_beef_u128,
                body: "{\"certified\":true}\n".into(),
            },
        ];
        for m in &cases {
            let doc = parse_json(&m.to_json().to_string()).unwrap();
            assert_eq!(&StoreMutation::from_json(&doc).unwrap(), m);
        }
    }

    #[test]
    fn scan_reads_back_what_was_encoded() {
        let mut bytes = WAL_HEADER.to_vec();
        for seq in 1..=5u64 {
            bytes.extend_from_slice(&encode_frame(seq, &module(seq as usize)));
        }
        let (frames, scan) = scan_bytes(&bytes);
        assert_eq!(frames.len(), 5);
        assert_eq!(scan.frames, 5);
        assert_eq!(scan.last_seq, 5);
        assert_eq!(scan.frames_truncated, 0);
        assert_eq!(scan.valid_len, bytes.len() as u64);
    }

    #[test]
    fn every_truncation_point_yields_a_prefix() {
        let mut bytes = WAL_HEADER.to_vec();
        let mut ends = vec![WAL_HEADER.len()];
        for seq in 1..=4u64 {
            bytes.extend_from_slice(&encode_frame(seq, &module(seq as usize)));
            ends.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let (frames, scan) = scan_bytes(&bytes[..cut]);
            // The frames recovered are exactly the whole frames before the
            // cut — a prefix, never a reordering or an invention.
            let expect = if cut < WAL_HEADER.len() {
                0
            } else {
                ends.iter().filter(|&&e| e <= cut).count() - 1
            };
            assert_eq!(frames.len(), expect, "cut at {cut}");
            for (i, (seq, _)) in frames.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
            }
            assert_eq!(scan.frames, expect as u64);
        }
    }

    #[test]
    fn a_flipped_byte_is_a_checksum_failure_not_a_panic() {
        let mut bytes = WAL_HEADER.to_vec();
        for seq in 1..=3u64 {
            bytes.extend_from_slice(&encode_frame(seq, &module(seq as usize)));
        }
        // Flip one payload byte of the second frame.
        let first_end = WAL_HEADER.len() + encode_frame(1, &module(1)).len();
        bytes[first_end + 25] ^= 0x40;
        let (frames, scan) = scan_bytes(&bytes);
        assert_eq!(frames.len(), 1, "scan stops at the corrupt frame");
        assert_eq!(scan.checksum_failures, 1);
        assert_eq!(scan.frames_truncated, 1);
        assert!(scan.bytes_truncated > 0);
    }
}
