//! Seeded single-edit perturbations of an STG.
//!
//! The incremental benchmarks and smoke tests need *small, deterministic*
//! edits: change one thing, re-synthesise, and count how many modules the
//! store had to re-solve. Two edit shapes cover the spectrum:
//!
//! * [`pulse_edit`] — splice an extra `s+ → s-` pulse directly after one
//!   falling transition of `s`. A genuine behavioural change: the state
//!   graph grows, some modules go dirty.
//! * [`rename_edit`] — change only the model name. The STG digest moves but
//!   the behaviour (and every module quotient) is untouched: the incremental
//!   path must re-solve **zero** modules.

use modsyn_petri::TransitionId;
use modsyn_stg::{Polarity, Stg, StgError};

/// Rebuilds `stg` under a (possibly different) model name, optionally
/// splicing an `s+ → s-` pulse after the transition `pulse_after` (which
/// must be a falling transition of signal `s`).
///
/// The copy preserves signal order, transition order, explicit place names
/// and the initial marking, so `rebuild(stg, stg.name(), None)` is
/// behaviourally identical to `stg`. With `pulse_after = Some(t)`, every
/// place fed by `t` is re-fed by the new falling pulse transition instead,
/// and the chain `t → s+ → s-` is appended.
///
/// # Errors
///
/// Propagates [`StgError`] from signal/arc construction (cannot happen for
/// a well-formed source STG).
pub fn rebuild(stg: &Stg, name: &str, pulse_after: Option<TransitionId>) -> Result<Stg, StgError> {
    let mut out = Stg::new(name);

    let mut signal_map = Vec::with_capacity(stg.signal_count());
    for id in stg.signal_ids() {
        let info = stg.signal(id);
        signal_map.push(out.add_signal(info.name(), info.kind())?);
    }

    // Transitions in storage order: labelled edges keep their signal and
    // polarity (instance numbers are re-derived, `write_g` renumbers
    // canonically anyway); dummies keep their name.
    let mut transition_map = Vec::new();
    for t in stg.net().transition_ids() {
        let new_t = match stg.label(t) {
            Some(label) => out.add_transition(signal_map[label.signal.index()], label.polarity),
            None => out.add_dummy(stg.net().transition(t).name()),
        };
        transition_map.push(new_t);
    }

    // The spliced pulse, if any: s+ then s- for the edited signal.
    let pulse = match pulse_after {
        Some(t) => {
            let label = stg
                .label(t)
                .expect("pulse edit targets a labelled transition");
            assert_eq!(
                label.polarity,
                Polarity::Fall,
                "pulse edits splice after a falling transition"
            );
            let signal = signal_map[label.signal.index()];
            let rise = out.add_transition(signal, Polarity::Rise);
            let fall = out.add_transition(signal, Polarity::Fall);
            Some((t, rise, fall))
        }
        None => None,
    };

    // Places with their arcs and marking. Every place is recreated
    // explicitly under its original name; arcs out of the edited transition
    // are redirected to come out of the pulse's falling edge instead.
    for p in stg.net().place_ids() {
        let place = stg.net().place(p);
        let new_p = out.add_place(place.name());
        for &from in place.fanin() {
            let src = match pulse {
                Some((edited, _, fall)) if from == edited => fall,
                _ => transition_map[from.index()],
            };
            out.arc_into_place(src, new_p)?;
        }
        for &to in place.fanout() {
            out.arc_from_place(new_p, transition_map[to.index()])?;
        }
        out.set_tokens(new_p, place.initial_tokens())?;
    }

    if let Some((edited, rise, fall)) = pulse {
        out.arc(transition_map[edited.index()], rise)?;
        out.arc(rise, fall)?;
    }

    Ok(out)
}

/// Splices an extra `signal+ → signal-` pulse after one of `signal`'s
/// falling transitions, chosen by `seed` (round-robin over the falling
/// transitions in storage order). Returns `None` when the named signal does
/// not exist or never falls.
///
/// The result keeps the model name: behaviour changed, identity didn't.
pub fn pulse_edit(stg: &Stg, signal: &str, seed: usize) -> Option<Stg> {
    let id = stg.find_signal(signal)?;
    let falls: Vec<TransitionId> = stg
        .transitions_of(id)
        .into_iter()
        .filter(|&t| stg.label(t).is_some_and(|l| l.polarity == Polarity::Fall))
        .collect();
    if falls.is_empty() {
        return None;
    }
    let t = falls[seed % falls.len()];
    rebuild(stg, stg.name(), Some(t)).ok()
}

/// Renames the model (`name` + `suffix`) without touching behaviour: the
/// content digest changes, every module quotient stays identical.
pub fn rename_edit(stg: &Stg, suffix: &str) -> Stg {
    let name = format!("{}{}", stg.name(), suffix);
    rebuild(stg, &name, None).expect("identity rebuild of a well-formed STG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::{benchmarks, stg_digest, write_g};

    #[test]
    fn identity_rebuild_preserves_behaviour_and_digest() {
        let stg = benchmarks::vbe_ex1();
        let copy = rebuild(&stg, stg.name(), None).unwrap();
        assert_eq!(write_g(&stg), write_g(&copy));
        assert_eq!(stg_digest(&stg), stg_digest(&copy));
    }

    #[test]
    fn rename_edit_moves_digest_only() {
        let stg = benchmarks::vbe_ex1();
        let renamed = rename_edit(&stg, "-r1");
        assert_ne!(stg_digest(&stg), stg_digest(&renamed));
        let opts = DeriveOptions::default();
        let a = derive(&stg, &opts).unwrap();
        let b = derive(&renamed, &opts).unwrap();
        assert_eq!(a, b, "state graphs must be identical under a rename");
    }

    #[test]
    fn pulse_edit_grows_the_state_graph() {
        let stg = benchmarks::vbe_ex1();
        let signal = stg
            .non_input_signals()
            .first()
            .map(|&s| stg.signal(s).name().to_string())
            .unwrap();
        let edited = pulse_edit(&stg, &signal, 0).unwrap();
        assert_ne!(stg_digest(&stg), stg_digest(&edited));
        let opts = DeriveOptions::default();
        let before = derive(&stg, &opts).unwrap();
        let after = derive(&edited, &opts).unwrap();
        assert!(
            after.state_count() > before.state_count(),
            "pulse must add states: {} vs {}",
            after.state_count(),
            before.state_count()
        );
    }

    #[test]
    fn pulse_edit_rejects_unknown_or_riseless_signals() {
        let stg = benchmarks::vbe_ex1();
        assert!(pulse_edit(&stg, "no-such-signal", 0).is_none());
    }

    #[test]
    fn pulse_seed_rotates_over_falling_transitions() {
        let stg = benchmarks::vbe_ex2();
        let signal = stg
            .non_input_signals()
            .first()
            .map(|&s| stg.signal(s).name().to_string())
            .unwrap();
        let id = stg.find_signal(&signal).unwrap();
        let falls = stg
            .transitions_of(id)
            .into_iter()
            .filter(|&t| stg.label(t).is_some_and(|l| l.polarity == Polarity::Fall))
            .count();
        let a = pulse_edit(&stg, &signal, 0).unwrap();
        let b = pulse_edit(&stg, &signal, falls).unwrap();
        // Seeds that agree modulo the fall count pick the same transition.
        assert_eq!(write_g(&a), write_g(&b));
    }
}
