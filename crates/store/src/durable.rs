//! Crash-safe persistence: atomic snapshot generations plus the journal.
//!
//! A durable store directory holds three files:
//!
//! ```text
//! dir/
//!   snap.json        current snapshot generation
//!   snap.prev.json   previous generation (fallback)
//!   store.wal        write-ahead journal of mutations since `snap.json`
//! ```
//!
//! **Writes** go journal-first: [`DurableStore::append`] frames the
//! mutation into `store.wal` (fsync'd on the [`DurableConfig::fsync_every`]
//! cadence) before the caller applies it in memory. Every
//! [`DurableConfig::checkpoint_every`] frames (and on graceful drain) a
//! **checkpoint** folds the state into a fresh snapshot written atomically
//! — temp file, fsync, rename — rotates the old snapshot to the previous
//! generation, and compacts the journal down to the frames the snapshot
//! does not yet cover.
//!
//! **Recovery** ([`DurableStore::open`]) is the reverse: load the newest
//! snapshot generation that parses (walking back to `snap.prev.json`, or
//! to empty, instead of refusing to start — corruption is a logged event,
//! never a bind failure), then replay the journal suffix above the
//! snapshot's watermark, truncating any torn tail. The typed
//! [`RecoveryReport`] says exactly what happened; the daemon surfaces it
//! in `/metrics` and the flight recorder.
//!
//! ## Invariants
//!
//! * A snapshot generation covers every journal frame `seq <=` its
//!   `wal_seq` watermark — the checkpoint computes the watermark from the
//!   *applied* (not merely appended) frontier while holding the journal
//!   lock, so compaction can never discard a frame the snapshot missed.
//! * Recovery yields a **consistent, certified** state that is possibly
//!   older than the crash frontier, never newer and never mixed: every
//!   recovered entry was journaled by a run the oracle certified, and
//!   anything lost to a torn tail or a corrupt generation is simply
//!   re-derived (and re-certified) on the next miss.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use modsyn_fault::{site, FaultHook, Faults};

use crate::snapshot::{snapshot_doc, snapshot_from_json, SnapshotData};
use crate::store::Snapshot;
use crate::wal::{scan_wal, StoreMutation, Wal};

/// Current-generation snapshot file name.
pub const SNAP_FILE: &str = "snap.json";
/// Previous-generation snapshot file name.
pub const SNAP_PREV_FILE: &str = "snap.prev.json";
/// Journal file name.
pub const WAL_FILE: &str = "store.wal";

/// Durability tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableConfig {
    /// The store directory (created if missing).
    pub dir: PathBuf,
    /// fsync the journal every N appends (1 = every mutation is durable
    /// before it is applied; the chaos matrix runs at 1).
    pub fsync_every: u64,
    /// Checkpoint (snapshot + journal compaction) every N appended frames.
    pub checkpoint_every: u64,
}

impl DurableConfig {
    /// Defaults: fsync every append, checkpoint every 256 frames.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            fsync_every: 1,
            checkpoint_every: 256,
        }
    }
}

/// What startup recovery found, typed. Rendered into `/metrics`
/// (`modsynd_recovery_*`) and the flight recorder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot generation loaded (false = cold start).
    pub snapshot_loaded: bool,
    /// Generations skipped as corrupt/unreadable before one loaded (1 =
    /// the previous-generation fallback fired; 2 = both were bad).
    pub snapshot_fallbacks: u64,
    /// Journal frames replayed over the snapshot.
    pub frames_replayed: u64,
    /// Frames below the snapshot watermark, skipped as already covered.
    pub frames_skipped: u64,
    /// Torn/garbage tail frames truncated.
    pub frames_truncated: u64,
    /// Frames dropped specifically for a checksum mismatch.
    pub checksum_failures: u64,
    /// Bytes discarded with the torn tail.
    pub bytes_truncated: u64,
    /// The journal watermark serving resumes from.
    pub wal_seq: u64,
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, then a best-effort directory fsync so
/// the rename itself is durable. Readers see the old contents or the new,
/// never a torn mix.
///
/// # Errors
///
/// Create/write/sync/rename failures (the temp file is left for
/// inspection on failure).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The durable store: journal handle + snapshot rotation + recovery.
#[derive(Debug)]
pub struct DurableStore {
    config: DurableConfig,
    wal: Wal,
    /// Highest journal seq whose mutation is known applied in memory; the
    /// checkpoint watermark. Appenders bump it *after* applying.
    applied: AtomicU64,
    checkpoints: AtomicU64,
}

impl DurableStore {
    /// Opens the directory and runs recovery: newest valid snapshot
    /// generation (fault site `store.snapshot-corrupt` can force the
    /// fallback), journal suffix replay with torn-tail truncation, then
    /// the journal reopens for appending. Returns the handle, the
    /// recovered state for the caller to load, and the typed report.
    ///
    /// # Errors
    ///
    /// Real I/O failures only (directory creation, journal open);
    /// corruption of any file is a reported recovery event, not an error.
    pub fn open(
        config: DurableConfig,
        faults: Faults,
    ) -> std::io::Result<(Arc<DurableStore>, SnapshotData, RecoveryReport)> {
        std::fs::create_dir_all(&config.dir)?;
        let mut report = RecoveryReport::default();
        let mut data = SnapshotData::default();
        for name in [SNAP_FILE, SNAP_PREV_FILE] {
            let path = config.dir.join(name);
            if !path.exists() {
                continue;
            }
            let injected = faults.fire(site::STORE_SNAPSHOT_CORRUPT);
            match (injected, load_snapshot(&path)) {
                (false, Ok(loaded)) => {
                    data = loaded;
                    report.snapshot_loaded = true;
                    break;
                }
                _ => report.snapshot_fallbacks += 1,
            }
        }
        report.wal_seq = data.wal_seq;

        let wal_path = config.dir.join(WAL_FILE);
        let (frames, scan) = scan_wal(&wal_path)?;
        report.frames_truncated = scan.frames_truncated;
        report.checksum_failures = scan.checksum_failures;
        report.bytes_truncated = scan.bytes_truncated;
        for (seq, mutation) in &frames {
            if *seq <= data.wal_seq {
                report.frames_skipped += 1;
                continue;
            }
            mutation.apply_to(&mut data);
            report.frames_replayed += 1;
            report.wal_seq = report.wal_seq.max(*seq);
        }

        let next_seq = report.wal_seq.max(scan.last_seq) + 1;
        let wal = Wal::open(
            &wal_path,
            next_seq,
            scan.valid_len,
            config.fsync_every,
            faults,
        )?;
        let durable = Arc::new(DurableStore {
            config,
            wal,
            applied: AtomicU64::new(report.wal_seq),
            checkpoints: AtomicU64::new(0),
        });
        Ok((durable, data, report))
    }

    /// The tuning this store was opened with.
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// Journals one mutation (write-ahead) and returns its sequence
    /// number; the caller applies the mutation in memory and then calls
    /// [`DurableStore::applied`].
    ///
    /// # Errors
    ///
    /// Journal write failures.
    pub fn append(&self, mutation: &StoreMutation) -> std::io::Result<u64> {
        self.wal.append(mutation)
    }

    /// Marks `seq` as applied in memory: the checkpoint watermark may now
    /// move past it.
    pub fn applied(&self, seq: u64) {
        self.applied.fetch_max(seq, Ordering::AcqRel);
    }

    /// Journals, applies via `apply`, and marks applied — the common
    /// shape. Journal failures are swallowed after the first sync loss
    /// (durability degrades; serving must not).
    pub fn record(&self, mutation: &StoreMutation, apply: impl FnOnce()) {
        let seq = self.append(mutation).ok();
        apply();
        if let Some(seq) = seq {
            self.applied(seq);
        }
    }

    /// Whether enough frames accumulated to warrant a checkpoint.
    pub fn checkpoint_due(&self) -> bool {
        self.wal.since_checkpoint() >= self.config.checkpoint_every
    }

    /// Takes a checkpoint: `state` must produce the live snapshot (store +
    /// response bodies) and is invoked with the journal locked, so the
    /// snapshot provably covers every applied frame. The current snapshot
    /// generation rotates to `snap.prev.json`, the new one lands
    /// atomically, and the journal is compacted to the uncovered suffix.
    ///
    /// # Errors
    ///
    /// Snapshot write or journal rewrite failures.
    pub fn checkpoint(
        &self,
        state: impl FnOnce() -> (Snapshot, Vec<(u128, String)>),
    ) -> std::io::Result<()> {
        self.wal.checkpoint_with(|_last| {
            // The journal lock is held: no appends interleave, so the
            // applied frontier sampled here is a true watermark — every
            // frame at or below it went through memory before the snapshot
            // closure runs. (Frames above it may *also* be in the snapshot;
            // replaying them is an idempotent upsert.)
            let covered = self.applied.load(Ordering::Acquire);
            let (snap, responses) = state();
            let doc = snapshot_doc(&snap, &responses, covered);
            let snap_path = self.config.dir.join(SNAP_FILE);
            let prev_path = self.config.dir.join(SNAP_PREV_FILE);
            if snap_path.exists() {
                std::fs::rename(&snap_path, &prev_path)?;
            }
            write_atomic(&snap_path, doc.pretty().as_bytes())?;
            Ok(covered)
        })?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Checkpoints when due; true when one ran.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::checkpoint`].
    pub fn maybe_checkpoint(
        &self,
        state: impl FnOnce() -> (Snapshot, Vec<(u128, String)>),
    ) -> std::io::Result<bool> {
        if !self.checkpoint_due() {
            return Ok(false);
        }
        self.checkpoint(state)?;
        Ok(true)
    }

    /// Forces unsynced journal frames to disk.
    ///
    /// # Errors
    ///
    /// The sync failure verbatim.
    pub fn sync(&self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Journal frames appended over this handle's life.
    pub fn wal_appends(&self) -> u64 {
        self.wal.appends()
    }

    /// Journal fsync(2) calls issued.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Checkpoints taken.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Torn journal appends injected by the fault plane.
    pub fn torn_injected(&self) -> u64 {
        self.wal.torn_injected()
    }
}

/// Loads and decodes one snapshot generation.
fn load_snapshot(path: &Path) -> Result<SnapshotData, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = modsyn_obs::parse_json(&text).map_err(|e| e.to_string())?;
    snapshot_from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{ModuleEntry, StoredFormula};
    use crate::store::SynthStore;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "modsyn-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(n: usize) -> ModuleEntry {
        ModuleEntry {
            assignments: Vec::new(),
            formulas: vec![StoredFormula {
                state_signals: n,
                ..Default::default()
            }],
            provenance: Vec::new(),
        }
    }

    fn module(n: usize) -> StoreMutation {
        StoreMutation::Module {
            key: n as u64,
            entry: entry(n),
        }
    }

    #[test]
    fn journal_survives_a_drop_without_checkpoint() {
        let dir = temp_dir("replay");
        let config = DurableConfig::new(&dir);
        {
            let (d, data, report) = DurableStore::open(config.clone(), Faults::none()).unwrap();
            assert!(!report.snapshot_loaded);
            assert_eq!(data, SnapshotData::default());
            for n in 1..=3 {
                d.record(&module(n), || {});
            }
        } // dropped, no checkpoint — the simulated kill -9
        let (_d, data, report) = DurableStore::open(config, Faults::none()).unwrap();
        assert_eq!(report.frames_replayed, 3);
        assert_eq!(report.frames_truncated, 0);
        assert_eq!(data.modules.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_rotates_generations() {
        let dir = temp_dir("checkpoint");
        let config = DurableConfig::new(&dir);
        let store = SynthStore::new();
        let (d, _, _) = DurableStore::open(config.clone(), Faults::none()).unwrap();
        for n in 1..=4u64 {
            let m = module(n as usize);
            d.record(&m, || {
                if let StoreMutation::Module { key, entry } = &m {
                    store.put_module(*key, entry.clone());
                }
            });
        }
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap();
        assert!(dir.join(SNAP_FILE).exists());
        assert!(!dir.join(SNAP_PREV_FILE).exists(), "first generation");
        // Second checkpoint rotates the first into the previous slot.
        store.put_module(99, entry(99));
        d.record(&module(99), || {});
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap();
        assert!(dir.join(SNAP_PREV_FILE).exists());

        let (_d2, data, report) = DurableStore::open(config, Faults::none()).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_fallbacks, 0);
        assert_eq!(report.frames_replayed, 0, "journal fully compacted");
        assert_eq!(data.modules.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_current_generation_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let config = DurableConfig::new(&dir);
        let store = SynthStore::new();
        let (d, _, _) = DurableStore::open(config.clone(), Faults::none()).unwrap();
        d.record(&module(1), || store.put_module(1, entry(1)));
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap();
        d.record(&module(2), || store.put_module(2, entry(2)));
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap();
        drop(d);
        // Corrupt the current generation mid-file.
        let snap = dir.join(SNAP_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        std::fs::write(&snap, &bytes).unwrap();

        let (_d, data, report) = DurableStore::open(config.clone(), Faults::none()).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_fallbacks, 1, "previous generation used");
        assert_eq!(data.modules.len(), 1, "older but consistent state");

        // Both generations corrupt: cold start, still no error.
        std::fs::write(dir.join(SNAP_FILE), b"{").unwrap();
        std::fs::write(dir.join(SNAP_PREV_FILE), b"garbage").unwrap();
        let (_d, data, report) = DurableStore::open(config, Faults::none()).unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.snapshot_fallbacks, 2);
        assert!(data.modules.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_snapshot_corruption_forces_the_fallback_path() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let dir = temp_dir("inject");
        let config = DurableConfig::new(&dir);
        let store = SynthStore::new();
        let (d, _, _) = DurableStore::open(config.clone(), Faults::none()).unwrap();
        d.record(&module(1), || store.put_module(1, entry(1)));
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap();
        drop(d);
        let faults = FaultPlan::new("test", 7)
            .rule(FaultRule::at(site::STORE_SNAPSHOT_CORRUPT).times(1))
            .arm();
        let (_d, data, report) = DurableStore::open(config, faults.clone()).unwrap();
        assert_eq!(report.snapshot_fallbacks, 1);
        assert!(!report.snapshot_loaded, "no previous generation yet");
        assert!(data.modules.is_empty());
        assert_eq!(faults.injected_at(site::STORE_SNAPSHOT_CORRUPT), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_append_loses_only_the_tail() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let dir = temp_dir("torn");
        let config = DurableConfig::new(&dir);
        let faults = FaultPlan::new("test", 7)
            .rule(FaultRule::at(site::STORE_WAL_TORN_WRITE).skip(1).times(1))
            .arm();
        let (d, _, _) = DurableStore::open(config.clone(), faults).unwrap();
        for n in 1..=4 {
            d.record(&module(n), || {});
        }
        assert_eq!(d.torn_injected(), 1);
        drop(d);
        let (_d, data, report) = DurableStore::open(config, Faults::none()).unwrap();
        // Frame 1 is whole; frame 2 is torn; 3 and 4 are unreachable past
        // the tear. Recovery keeps the valid prefix only.
        assert_eq!(report.frames_replayed, 1);
        assert_eq!(report.frames_truncated, 1);
        assert!(report.bytes_truncated > 0);
        assert_eq!(data.modules.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
