//! # modsyn-store
//!
//! An incremental, content-addressed synthesis store. The modular flow of
//! the paper decomposes one synthesis run into independent per-module
//! CSC solves; this crate caches those solves by the *content* of the
//! module — the exact quotient state graph plus every solver-relevant
//! option — so that re-synthesising a lightly edited STG only pays for the
//! modules the edit actually touched.
//!
//! Three pieces:
//!
//! * **The store** ([`SynthStore`]) — two content-addressed namespaces
//!   (module solves and whole-run synthesis records) built on persistent,
//!   structurally-shared [`ChunkedMap`]s. Snapshots are O(chunks) to take,
//!   immutable, and diffable ([`Snapshot::diff`]), giving the daemon a
//!   cheap timeline of how the store evolved.
//! * **Provenance** ([`Provenance`]) — every inserted state signal records
//!   which module forced it, which CSC conflict pairs it resolves, and the
//!   clause-family breakdown of the winning formula, so `GET /explain` and
//!   `modsyn --explain` can answer "why does `csc0` exist?".
//! * **Edits** ([`pulse_edit`], [`rename_edit`]) — seeded single-edit STG
//!   perturbations used by the incremental benchmarks and smoke tests.
//!
//! ## Keying discipline
//!
//! Module keys ([`module_key`]) hash the **exact rendering** of the
//! quotient graph ([`graph_key_text`]) — storage order, not canonical
//! order. SAT solvers are not relabelling-equivariant: an isomorphic but
//! renumbered quotient can produce a different (equally valid) model, which
//! would break the store's central guarantee that an incremental result is
//! byte-identical to from-scratch resynthesis. Equal key text means the
//! solver sees an indistinguishable problem, so replaying the cached
//! solution is exactly what a fresh solve would have produced.

pub mod chunk;
pub mod durable;
pub mod edit;
pub mod provenance;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use chunk::{ChunkedMap, MapDiff, CHUNK_COUNT};
pub use durable::{
    write_atomic, DurableConfig, DurableStore, RecoveryReport, SNAP_FILE, SNAP_PREV_FILE, WAL_FILE,
};
pub use edit::{pulse_edit, rebuild, rename_edit};
pub use provenance::{ClauseFamilies, ModuleEntry, Provenance, StoredFormula, SynthRecord};
pub use snapshot::{
    restore_into, snapshot_doc, snapshot_from_json, snapshot_to_json, SnapshotData,
    SNAPSHOT_VERSION,
};
pub use store::{
    graph_key_text, module_key, Snapshot, SnapshotMeta, StoreDiff, StoreLink, StoreSession,
    SynthStore,
};
pub use wal::{encode_frame, scan_bytes, scan_wal, StoreMutation, Wal, WalScan, WAL_HEADER};

// Re-exported so store consumers can derive digests without a direct
// modsyn-stg dependency.
pub use modsyn_stg::{fnv1a64, stg_digest};
