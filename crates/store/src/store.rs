//! The synthesis store: content-addressed namespaces behind a mutex, with
//! cheap structurally-shared snapshots and per-run session counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use modsyn_sg::{EdgeLabel, StateGraph};
use modsyn_stg::fnv1a64;

use crate::chunk::{ChunkedMap, MapDiff};
use crate::durable::DurableStore;
use crate::provenance::{ModuleEntry, SynthRecord};
use crate::wal::StoreMutation;

/// A content-addressed store for per-module SAT solutions and per-STG
/// synthesis records.
///
/// Lookups and inserts go through a [`StoreSession`] (one per synthesis
/// run), which tallies per-run hits and misses on top of the store-wide
/// counters — the per-request dirty-module accounting of `POST /synth/incr`.
#[derive(Debug, Default)]
pub struct SynthStore {
    inner: Mutex<Inner>,
    /// Write-ahead journal attachment; when set, every insert is journaled
    /// *before* it lands in memory. Kept outside `Inner` (and appended to
    /// before `inner` is locked) so the journal→store lock order matches
    /// the checkpoint path and can never deadlock against it.
    durable: Mutex<Option<Arc<DurableStore>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    dirty: AtomicU64,
    seq: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    modules: ChunkedMap<ModuleEntry>,
    records: ChunkedMap<SynthRecord>,
    timeline: Vec<SnapshotMeta>,
}

/// A point-in-time view of the store. Cloned chunk pointers, not payload:
/// taking one is O(chunks), and it stays valid (and immutable) while the
/// live store moves on.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Monotonic snapshot sequence number.
    pub seq: u64,
    pub(crate) modules: ChunkedMap<ModuleEntry>,
    pub(crate) records: ChunkedMap<SynthRecord>,
}

/// Timeline entry recorded for every snapshot taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Sequence number of the snapshot.
    pub seq: u64,
    /// Module entries at snapshot time.
    pub modules: usize,
    /// Synthesis records at snapshot time.
    pub records: usize,
}

/// Namespaced difference between two snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreDiff {
    /// Module-namespace changes.
    pub modules: MapDiff,
    /// Record-namespace changes.
    pub records: MapDiff,
}

impl StoreDiff {
    /// Whether the snapshots are identical.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty() && self.records.is_empty()
    }
}

impl Snapshot {
    /// Module entries, sorted by key.
    pub fn modules(&self) -> Vec<(u64, Arc<ModuleEntry>)> {
        self.modules.entries()
    }

    /// Synthesis records, sorted by digest.
    pub fn records(&self) -> Vec<(u64, Arc<SynthRecord>)> {
        self.records.entries()
    }

    /// What changed from `self` to the (newer) snapshot `newer`.
    pub fn diff(&self, newer: &Snapshot) -> StoreDiff {
        StoreDiff {
            modules: self.modules.diff(&newer.modules),
            records: self.records.diff(&newer.records),
        }
    }
}

impl SynthStore {
    /// An empty store.
    pub fn new() -> Self {
        SynthStore::default()
    }

    /// Looks up a module solve by content key (uncounted; sessions count).
    pub fn get_module(&self, key: u64) -> Option<Arc<ModuleEntry>> {
        self.inner.lock().unwrap().modules.get(key)
    }

    /// Inserts a module solve under its content key (journaled first when
    /// a durable attachment is present).
    pub fn put_module(&self, key: u64, entry: ModuleEntry) {
        if let Some(d) = self.durable() {
            d.record(
                &StoreMutation::Module {
                    key,
                    entry: entry.clone(),
                },
                || {
                    self.inner.lock().unwrap().modules.insert(key, entry);
                },
            );
        } else {
            self.inner.lock().unwrap().modules.insert(key, entry);
        }
    }

    /// Looks up a synthesis record by STG digest.
    pub fn get_record(&self, digest: u64) -> Option<Arc<SynthRecord>> {
        self.inner.lock().unwrap().records.get(digest)
    }

    /// Inserts a synthesis record under the STG digest (journaled first
    /// when a durable attachment is present).
    pub fn put_record(&self, digest: u64, record: SynthRecord) {
        if let Some(d) = self.durable() {
            d.record(
                &StoreMutation::Record {
                    digest,
                    record: record.clone(),
                },
                || {
                    self.inner.lock().unwrap().records.insert(digest, record);
                },
            );
        } else {
            self.inner.lock().unwrap().records.insert(digest, record);
        }
    }

    /// Attaches the write-ahead journal. Do this *after* restoring
    /// recovered state, so the replay itself is not re-journaled.
    pub fn attach_durable(&self, durable: Arc<DurableStore>) {
        *self.durable.lock().unwrap() = Some(durable);
    }

    /// The durable attachment, if one was made.
    pub fn durable(&self) -> Option<Arc<DurableStore>> {
        self.durable.lock().unwrap().clone()
    }

    /// Number of cached module solves.
    pub fn module_count(&self) -> usize {
        self.inner.lock().unwrap().modules.len()
    }

    /// Number of synthesis records.
    pub fn record_count(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// Takes a structurally-shared snapshot and appends it to the timeline.
    pub fn snapshot(&self) -> Snapshot {
        let mut inner = self.inner.lock().unwrap();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let snap = Snapshot {
            seq,
            modules: inner.modules.clone(),
            records: inner.records.clone(),
        };
        let meta = SnapshotMeta {
            seq,
            modules: snap.modules.len(),
            records: snap.records.len(),
        };
        inner.timeline.push(meta);
        snap
    }

    /// The metadata of every snapshot taken so far, in order.
    pub fn timeline(&self) -> Vec<SnapshotMeta> {
        self.inner.lock().unwrap().timeline.clone()
    }

    /// Store-wide module-lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Store-wide module-lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Modules re-solved on behalf of incremental requests.
    pub fn dirty(&self) -> u64 {
        self.dirty.load(Ordering::Relaxed)
    }

    /// Counts `n` modules as dirty (re-solved during an incremental run).
    pub fn add_dirty(&self, n: u64) {
        self.dirty.fetch_add(n, Ordering::Relaxed);
    }
}

/// One synthesis run's view of a [`SynthStore`]: shares the cache, tallies
/// its own hits and misses so callers can report per-run dirty counts even
/// with concurrent runs on the same store.
#[derive(Debug)]
pub struct StoreSession {
    store: Arc<SynthStore>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StoreSession {
    /// Opens a session on `store`.
    pub fn new(store: Arc<SynthStore>) -> Arc<StoreSession> {
        Arc::new(StoreSession {
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<SynthStore> {
        &self.store
    }

    /// Counted module lookup: bumps the session *and* store hit/miss
    /// counters.
    pub fn get_module(&self, key: u64) -> Option<Arc<ModuleEntry>> {
        let found = self.store.get_module(key);
        let (own, global) = if found.is_some() {
            (&self.hits, &self.store.hits)
        } else {
            (&self.misses, &self.store.misses)
        };
        own.fetch_add(1, Ordering::Relaxed);
        global.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Inserts a module solve (after a miss was solved for real).
    pub fn put_module(&self, key: u64, entry: ModuleEntry) {
        self.store.put_module(key, entry);
    }

    /// Module lookups this session that hit.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Module lookups this session that missed (modules solved for real —
    /// the run's *dirty* count).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Modules consulted this session (hits + misses).
    pub fn total(&self) -> u64 {
        self.hits() + self.misses()
    }
}

/// An optional store attachment for synthesis options.
///
/// Compares by identity (like `CancelToken` and `Faults` do), so two
/// default option values — both unattached — are still equal, and attaching
/// a store never makes two otherwise-equal option sets spuriously equal.
#[derive(Clone, Default)]
pub struct StoreLink(Option<Arc<StoreSession>>);

impl StoreLink {
    /// No store attached (the default).
    pub fn none() -> Self {
        StoreLink(None)
    }

    /// Attaches a session.
    pub fn to(session: Arc<StoreSession>) -> Self {
        StoreLink(Some(session))
    }

    /// The attached session, if any.
    pub fn session(&self) -> Option<&Arc<StoreSession>> {
        self.0.as_ref()
    }
}

impl PartialEq for StoreLink {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl std::fmt::Debug for StoreLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "StoreLink(attached)"
        } else {
            "StoreLink(none)"
        })
    }
}

/// The exact canonical rendering of a state graph used for module keys.
///
/// Signals, codes and edges are emitted **in storage order**, not sorted:
/// the SAT encoding's clause order — and with it the solver's decision
/// sequence and the model it returns — depends on that order, so two graphs
/// must be *indistinguishable to the solver* (not merely isomorphic) to
/// share a key. Equal text ⇒ equal data structure ⇒ a cached solution is
/// byte-for-byte what a fresh solve would produce.
pub fn graph_key_text(graph: &StateGraph) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(64 + 16 * graph.state_count());
    out.push_str("sg/v1\n");
    for meta in graph.signals() {
        let _ = writeln!(out, "s {} {}", meta.name, meta.kind);
    }
    let _ = writeln!(out, "i {}", graph.initial());
    for s in 0..graph.state_count() {
        let _ = writeln!(out, "c {:x}", graph.code(s));
    }
    for e in graph.edges() {
        match e.label {
            EdgeLabel::Signal { signal, polarity } => {
                let _ = writeln!(out, "e {} {} {}{}", e.from, e.to, signal, polarity);
            }
            EdgeLabel::Epsilon => {
                let _ = writeln!(out, "e {} {} ~", e.from, e.to);
            }
        }
    }
    out
}

/// Content key for one module solve: the exact graph rendering plus every
/// solver-relevant parameter (`fingerprint`: scope, name offset, solver
/// options — assembled by the caller, which knows its option type).
pub fn module_key(graph: &StateGraph, fingerprint: &str) -> u64 {
    let mut text = String::with_capacity(fingerprint.len() + 64);
    text.push_str("modsyn-store/module/v1\n");
    text.push_str(fingerprint);
    text.push('\n');
    text.push_str(&graph_key_text(graph));
    fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    fn entry(n: usize) -> ModuleEntry {
        ModuleEntry {
            assignments: Vec::new(),
            formulas: vec![crate::StoredFormula {
                state_signals: n,
                ..Default::default()
            }],
            provenance: Vec::new(),
        }
    }

    #[test]
    fn snapshots_are_immutable_views_with_a_timeline() {
        let store = SynthStore::new();
        store.put_module(1, entry(1));
        let before = store.snapshot();
        store.put_module(2, entry(2));
        store.put_record(
            9,
            SynthRecord {
                benchmark: "b".into(),
                inserted: vec![],
                provenance: vec![],
            },
        );
        let after = store.snapshot();

        assert_eq!(before.modules().len(), 1);
        assert_eq!(after.modules().len(), 2);
        let diff = before.diff(&after);
        assert_eq!(diff.modules.added, vec![2]);
        assert_eq!(diff.records.added, vec![9]);
        assert!(diff.modules.removed.is_empty());

        let timeline = store.timeline();
        assert_eq!(timeline.len(), 2);
        assert!(timeline[0].seq < timeline[1].seq);
        assert_eq!(timeline[1].modules, 2);
    }

    #[test]
    fn sessions_tally_hits_and_misses_independently() {
        let store = Arc::new(SynthStore::new());
        let a = StoreSession::new(store.clone());
        assert!(a.get_module(5).is_none());
        a.put_module(5, entry(5));
        assert!(a.get_module(5).is_some());
        assert_eq!((a.hits(), a.misses()), (1, 1));

        let b = StoreSession::new(store.clone());
        assert!(b.get_module(5).is_some());
        assert_eq!((b.hits(), b.misses()), (1, 0));
        assert_eq!((store.hits(), store.misses()), (2, 1));
        assert_eq!(b.total(), 1);
    }

    #[test]
    fn store_link_compares_by_identity() {
        let store = Arc::new(SynthStore::new());
        let s = StoreSession::new(store);
        assert_eq!(StoreLink::none(), StoreLink::default());
        assert_eq!(StoreLink::to(s.clone()), StoreLink::to(s.clone()));
        let other = StoreSession::new(Arc::new(SynthStore::new()));
        assert_ne!(StoreLink::to(s.clone()), StoreLink::to(other));
        assert_ne!(StoreLink::to(s), StoreLink::none());
    }

    #[test]
    fn graph_key_text_is_exact_not_isomorphic() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let text = graph_key_text(&sg);
        assert_eq!(text, graph_key_text(&sg.clone()));
        assert_eq!(
            module_key(&sg, "scope=all offset=0"),
            module_key(&sg, "scope=all offset=0"),
        );
        assert_ne!(
            module_key(&sg, "scope=all offset=0"),
            module_key(&sg, "scope=all offset=1"),
            "fingerprint must separate keys"
        );
        // A different graph (another benchmark) keys differently.
        let other = derive(&benchmarks::vbe_ex2(), &DeriveOptions::default()).unwrap();
        assert_ne!(
            module_key(&sg, "scope=all offset=0"),
            module_key(&other, "scope=all offset=0"),
        );
    }
}
