//! Speed-independence of the derived gate netlist.
//!
//! The synthesised circuit is one two-level AND–OR network per non-input
//! signal. Under the unbounded-gate-delay model the circuit is glitch-free
//! against its specification exactly when, in the closed loop of circuit
//! and state graph,
//!
//! 1. **conformance** — in every reachable specification state, the set of
//!    non-input signals whose gate output disagrees with their current
//!    value equals the set the specification excites there, and
//! 2. **persistence (semi-modularity)** — an excited non-input signal stays
//!    excited until it fires: no other transition may withdraw the
//!    excitation, because the victim's gate could already be switching and
//!    would emit a runt pulse (computation interference).
//!
//! The netlist representation here is deliberately minimal (cubes as
//! literal lists, evaluated by brute force) so this checker shares no code
//! with `modsyn-logic`'s cover machinery.

use modsyn_sg::{EdgeLabel, StateGraph};

use crate::CheckError;

/// One literal of a product term: signal index and required value.
pub type SopLiteral = (usize, bool);

/// A sum-of-products next-state function over the graph's signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SopFn {
    /// The driven signal's name.
    pub name: String,
    /// Product terms; each is a conjunction of literals. An empty cube is
    /// the constant 1, an empty cube list the constant 0.
    pub cubes: Vec<Vec<SopLiteral>>,
}

impl SopFn {
    /// Evaluates the function on a full signal-value vector.
    pub fn eval(&self, values: &[bool]) -> bool {
        self.cubes
            .iter()
            .any(|cube| cube.iter().all(|&(var, want)| values[var] == want))
    }
}

/// The gate-level circuit: one [`SopFn`] per driven signal, indexed like
/// the state graph's signal list (`None` for environment-driven inputs).
#[derive(Debug, Clone, Default)]
pub struct GateNetlist {
    functions: Vec<Option<SopFn>>,
}

impl GateNetlist {
    /// An empty netlist over `signals` signal slots.
    pub fn new(signals: usize) -> Self {
        GateNetlist {
            functions: vec![None; signals],
        }
    }

    /// Installs the function driving signal slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, function: SopFn) {
        self.functions[index] = Some(function);
    }

    /// The function driving slot `index`, if any.
    pub fn function(&self, index: usize) -> Option<&SopFn> {
        self.functions[index].as_ref()
    }
}

/// Checks conformance and output persistence of `netlist` against `sg`
/// (see the module docs for the two properties).
///
/// # Errors
///
/// * [`CheckError::MissingFunction`] — a non-input signal has no gates,
/// * [`CheckError::Nonconforming`] — gates and specification disagree on
///   which outputs should change in some state,
/// * [`CheckError::NotSpeedIndependent`] — a fired transition withdraws a
///   pending non-input excitation,
/// * [`CheckError::Unreachable`] is *not* raised here: only reachable
///   states matter for circuit behaviour, so the walk simply starts at the
///   initial state.
pub fn check_speed_independence(netlist: &GateNetlist, sg: &StateGraph) -> Result<(), CheckError> {
    let n = sg.signals().len();
    for (i, meta) in sg.signals().iter().enumerate() {
        if meta.kind.is_non_input() && netlist.function(i).is_none() {
            return Err(CheckError::MissingFunction {
                signal: meta.name.clone(),
            });
        }
    }

    // The non-input signals the gates command to change, given values.
    let commanded = |values: &[bool]| -> Vec<usize> {
        (0..n)
            .filter(|&i| {
                netlist
                    .function(i)
                    .is_some_and(|f| f.eval(values) != values[i])
            })
            .collect()
    };
    let values_of = |state: usize| -> Vec<bool> { (0..n).map(|i| sg.value(state, i)).collect() };

    let mut seen = vec![false; sg.state_count()];
    let mut queue = std::collections::VecDeque::from([sg.initial()]);
    seen[sg.initial()] = true;
    while let Some(state) = queue.pop_front() {
        let values = values_of(state);
        let excited = commanded(&values);

        // 1. Conformance: gates vs specification, per signal.
        for i in 0..n {
            if !sg.signals()[i].kind.is_non_input() {
                continue;
            }
            let by_gates = excited.contains(&i);
            let by_spec = sg.excited(state, i).is_some();
            if by_gates != by_spec {
                return Err(CheckError::Nonconforming {
                    state,
                    signal: sg.signals()[i].name.clone(),
                    spec_excited: by_spec,
                });
            }
        }

        // 2. Persistence: firing any enabled transition must leave every
        //    other pending non-input excitation intact.
        for e in sg.out_edges(state) {
            let fired = match e.label {
                EdgeLabel::Signal { signal, polarity } => {
                    format!("{}{}", sg.signals()[signal].name, polarity)
                }
                EdgeLabel::Epsilon => "\u{3b5}".to_string(),
            };
            let fired_signal = match e.label {
                EdgeLabel::Signal { signal, .. } => Some(signal),
                EdgeLabel::Epsilon => None,
            };
            let next_values = values_of(e.to);
            for &victim in &excited {
                if Some(victim) == fired_signal {
                    continue; // it fired — excitation consumed, not withdrawn
                }
                let f = netlist.function(victim).expect("checked above");
                let still_pending = f.eval(&next_values) != next_values[victim];
                if !still_pending {
                    return Err(CheckError::NotSpeedIndependent {
                        state,
                        fired,
                        victim: sg.signals()[victim].name.clone(),
                    });
                }
            }
            if !seen[e.to] {
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::SignalMeta;
    use modsyn_stg::{Polarity, SignalKind};

    fn meta(name: &str, kind: SignalKind) -> SignalMeta {
        SignalMeta {
            name: name.into(),
            kind,
        }
    }

    fn lab(signal: usize, polarity: Polarity) -> EdgeLabel {
        EdgeLabel::Signal { signal, polarity }
    }

    /// a+ b+ a- b- handshake with b = f(a, b).
    fn handshake() -> StateGraph {
        let mut sg = StateGraph::new(vec![
            meta("a", SignalKind::Input),
            meta("b", SignalKind::Output),
        ])
        .unwrap();
        let s: Vec<usize> = [0b00, 0b01, 0b11, 0b10]
            .into_iter()
            .map(|c| sg.add_state(c))
            .collect();
        sg.add_edge(s[0], s[1], lab(0, Polarity::Rise));
        sg.add_edge(s[1], s[2], lab(1, Polarity::Rise));
        sg.add_edge(s[2], s[3], lab(0, Polarity::Fall));
        sg.add_edge(s[3], s[0], lab(1, Polarity::Fall));
        sg
    }

    #[test]
    fn correct_buffer_is_speed_independent() {
        let sg = handshake();
        let mut netlist = GateNetlist::new(2);
        // b's next value is simply a (a C-element-free buffer).
        netlist.set(
            1,
            SopFn {
                name: "b".into(),
                cubes: vec![vec![(0, true)]],
            },
        );
        check_speed_independence(&netlist, &sg).unwrap();
    }

    #[test]
    fn missing_function_is_typed() {
        let sg = handshake();
        let netlist = GateNetlist::new(2);
        assert!(matches!(
            check_speed_independence(&netlist, &sg),
            Err(CheckError::MissingFunction { .. })
        ));
    }

    #[test]
    fn constant_gate_is_nonconforming() {
        let sg = handshake();
        let mut netlist = GateNetlist::new(2);
        netlist.set(
            1,
            SopFn {
                name: "b".into(),
                cubes: vec![vec![]], // constant 1
            },
        );
        let err = check_speed_independence(&netlist, &sg).unwrap_err();
        assert!(matches!(err, CheckError::Nonconforming { .. }), "{err}");
    }

    #[test]
    fn withdrawn_excitation_is_caught() {
        // Two concurrent inputs a, c and an output b excited only while
        // a=1 and c=0: firing c+ withdraws b's excitation.
        let mut sg = StateGraph::new(vec![
            meta("a", SignalKind::Input),
            meta("b", SignalKind::Output),
            meta("c", SignalKind::Input),
        ])
        .unwrap();
        // 000 -a+-> 001; then either b+ (011) or c+ (101);
        // from 101 continue c- back etc. Keep the graph small: the
        // conformance check passes (spec also excites b at 001) but firing
        // c+ at 001 leads to 101 where the gate no longer drives b up —
        // yet the spec at 101 doesn't excite b either, so conformance
        // holds and only persistence trips.
        let s000 = sg.add_state(0b000);
        let s001 = sg.add_state(0b001);
        let s011 = sg.add_state(0b011);
        let s101 = sg.add_state(0b101);
        let s111 = sg.add_state(0b111);
        sg.add_edge(s000, s001, lab(0, Polarity::Rise));
        sg.add_edge(s001, s011, lab(1, Polarity::Rise));
        sg.add_edge(s001, s101, lab(2, Polarity::Rise));
        sg.add_edge(s011, s111, lab(2, Polarity::Rise));
        sg.add_edge(s111, s000, EdgeLabel::Epsilon); // close it off (test only)
        sg.add_edge(s101, s000, EdgeLabel::Epsilon);
        let mut netlist = GateNetlist::new(3);
        // b rises only while a ∧ ¬c; b holds itself once high.
        netlist.set(
            1,
            SopFn {
                name: "b".into(),
                cubes: vec![vec![(0, true), (2, false)], vec![(1, true)]],
            },
        );
        let err = check_speed_independence(&netlist, &sg).unwrap_err();
        match err {
            CheckError::NotSpeedIndependent { fired, victim, .. } => {
                assert_eq!(fired, "c+");
                assert_eq!(victim, "b");
            }
            CheckError::Nonconforming { .. } => {
                // The little graph above is not a full spec; reaching the
                // persistence check requires conformance first. If the
                // shapes drift, fail loudly so the test gets fixed.
                panic!("test graph no longer conforms; adjust the fixture");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn sop_eval_semantics() {
        let f = SopFn {
            name: "f".into(),
            cubes: vec![vec![(0, true), (1, false)], vec![(2, true)]],
        };
        assert!(f.eval(&[true, false, false]));
        assert!(f.eval(&[false, true, true]));
        assert!(!f.eval(&[false, false, false]));
        let zero = SopFn {
            name: "z".into(),
            cubes: vec![],
        };
        assert!(!zero.eval(&[true]));
    }
}
