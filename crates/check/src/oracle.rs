//! The state-coding and consistency checkers.
//!
//! Each checker is written directly against the paper's definitions using
//! only the passive accessors of [`StateGraph`] — none of the analysis code
//! in `modsyn-sg` (`csc_analysis`, `hide_signals`, …) is reused, so a bug
//! there cannot mask itself here.

use std::collections::HashMap;

use modsyn_sg::{EdgeLabel, StateGraph};

use crate::CheckError;

/// States reachable from the initial state, in BFS order.
fn reachable(sg: &StateGraph) -> Vec<usize> {
    let mut seen = vec![false; sg.state_count()];
    let mut order = Vec::new();
    if sg.state_count() == 0 {
        return order;
    }
    let mut queue = std::collections::VecDeque::from([sg.initial()]);
    seen[sg.initial()] = true;
    while let Some(s) = queue.pop_front() {
        order.push(s);
        for e in sg.out_edges(s) {
            if !seen[e.to] {
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    order
}

/// Every state must be reachable; otherwise code-sharing checks would
/// silently skip part of the graph.
fn check_reachable(sg: &StateGraph) -> Result<Vec<usize>, CheckError> {
    let order = reachable(sg);
    if order.len() != sg.state_count() {
        let mut seen = vec![false; sg.state_count()];
        for &s in &order {
            seen[s] = true;
        }
        let state = seen.iter().position(|&r| !r).expect("some state missing");
        return Err(CheckError::Unreachable { state });
    }
    Ok(order)
}

/// The set of non-input signals enabled (excited) in a state, computed
/// straight from the outgoing edges.
fn enabled_non_inputs(sg: &StateGraph, state: usize) -> u64 {
    let mut mask = 0u64;
    for e in sg.out_edges(state) {
        if let EdgeLabel::Signal { signal, .. } = e.label {
            if sg.signals()[signal].kind.is_non_input() {
                mask |= 1 << signal;
            }
        }
    }
    mask
}

/// **Definition (consistency).** Along every firing sequence, the edges of
/// each signal strictly alternate `+`, `-`, `+`, … starting from the
/// signal's initial value, and every state's code records exactly the
/// signals that have risen an odd number of times.
///
/// Checked edge-locally, which is equivalent: if every `s+` edge leaves a
/// state where `s = 0` and enters one where `s = 1` (and conversely for
/// `s-`), and no edge changes any *other* bit, then along any path the
/// edges of `s` must alternate, whatever the path.
///
/// Silent (ε) edges must not change the code at all.
///
/// # Errors
///
/// [`CheckError::Inconsistent`] with the offending edge, or
/// [`CheckError::Unreachable`] if some state cannot be reached at all.
pub fn check_consistency(sg: &StateGraph) -> Result<(), CheckError> {
    check_reachable(sg)?;
    for e in sg.edges() {
        match e.label {
            EdgeLabel::Epsilon => {
                if sg.code(e.from) != sg.code(e.to) {
                    return Err(CheckError::Inconsistent {
                        state: e.from,
                        signal: "\u{3b5}".into(),
                        detail: format!(
                            "silent edge changes the code from {} to {}",
                            sg.code_string(e.from),
                            sg.code_string(e.to)
                        ),
                    });
                }
            }
            EdgeLabel::Signal { signal, polarity } => {
                let name = sg.signals()[signal].name.clone();
                if sg.value(e.from, signal) != polarity.value_before() {
                    return Err(CheckError::Inconsistent {
                        state: e.from,
                        signal: name,
                        detail: format!(
                            "{polarity} edge fires from value {}",
                            u8::from(sg.value(e.from, signal))
                        ),
                    });
                }
                if sg.value(e.to, signal) != polarity.value_after() {
                    return Err(CheckError::Inconsistent {
                        state: e.from,
                        signal: name,
                        detail: format!(
                            "{polarity} edge lands on value {}",
                            u8::from(sg.value(e.to, signal))
                        ),
                    });
                }
                if sg.code(e.from) ^ sg.code(e.to) != 1u64 << signal {
                    return Err(CheckError::Inconsistent {
                        state: e.from,
                        signal: name,
                        detail: format!(
                            "edge changes other bits: {} -> {}",
                            sg.code_string(e.from),
                            sg.code_string(e.to)
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// **Definition (USC).** No two distinct reachable states share a code.
///
/// # Errors
///
/// [`CheckError::UscViolation`] with the first offending pair, or
/// [`CheckError::Unreachable`].
pub fn check_usc(sg: &StateGraph) -> Result<(), CheckError> {
    let order = check_reachable(sg)?;
    let mut first_with_code: HashMap<u64, usize> = HashMap::new();
    for s in order {
        if let Some(&prev) = first_with_code.get(&sg.code(s)) {
            return Err(CheckError::UscViolation {
                a: prev,
                b: s,
                code: sg.code_string(s),
            });
        }
        first_with_code.insert(sg.code(s), s);
    }
    Ok(())
}

/// **Definition (CSC).** Any two reachable states with equal codes enable
/// exactly the same set of non-input signals — so the next value of every
/// non-input signal is a function of the code alone.
///
/// # Errors
///
/// [`CheckError::CscViolation`] naming the signals whose excitation
/// differs, or [`CheckError::Unreachable`].
pub fn check_csc(sg: &StateGraph) -> Result<(), CheckError> {
    let order = check_reachable(sg)?;
    let mut by_code: HashMap<u64, Vec<usize>> = HashMap::new();
    for s in order {
        by_code.entry(sg.code(s)).or_default().push(s);
    }
    for group in by_code.values() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let ea = enabled_non_inputs(sg, a);
                let eb = enabled_non_inputs(sg, b);
                if ea != eb {
                    let differing: Vec<String> = (0..sg.signals().len())
                        .filter(|&k| (ea ^ eb) >> k & 1 == 1)
                        .map(|k| sg.signals()[k].name.clone())
                        .collect();
                    return Err(CheckError::CscViolation {
                        a,
                        b,
                        code: sg.code_string(a),
                        differing,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::SignalMeta;
    use modsyn_stg::{Polarity, SignalKind};

    fn meta(name: &str, kind: SignalKind) -> SignalMeta {
        SignalMeta {
            name: name.into(),
            kind,
        }
    }

    fn lab(signal: usize, polarity: Polarity) -> EdgeLabel {
        EdgeLabel::Signal { signal, polarity }
    }

    /// a+ b+ a- b- handshake: clean on every property.
    fn handshake() -> StateGraph {
        let mut sg = StateGraph::new(vec![
            meta("a", SignalKind::Input),
            meta("b", SignalKind::Output),
        ])
        .unwrap();
        let s: Vec<usize> = [0b00, 0b01, 0b11, 0b10]
            .into_iter()
            .map(|c| sg.add_state(c))
            .collect();
        sg.add_edge(s[0], s[1], lab(0, Polarity::Rise));
        sg.add_edge(s[1], s[2], lab(1, Polarity::Rise));
        sg.add_edge(s[2], s[3], lab(0, Polarity::Fall));
        sg.add_edge(s[3], s[0], lab(1, Polarity::Fall));
        sg
    }

    #[test]
    fn handshake_passes_everything() {
        let sg = handshake();
        check_consistency(&sg).unwrap();
        check_usc(&sg).unwrap();
        check_csc(&sg).unwrap();
    }

    #[test]
    fn shared_code_same_excitation_fails_usc_only() {
        // Two a-pulses: codes repeat with equal (empty) output excitation.
        let mut sg = StateGraph::new(vec![meta("a", SignalKind::Input)]).unwrap();
        let s: Vec<usize> = [0b0, 0b1, 0b0, 0b1]
            .into_iter()
            .map(|c| sg.add_state(c))
            .collect();
        sg.add_edge(s[0], s[1], lab(0, Polarity::Rise));
        sg.add_edge(s[1], s[2], lab(0, Polarity::Fall));
        sg.add_edge(s[2], s[3], lab(0, Polarity::Rise));
        sg.add_edge(s[3], s[0], lab(0, Polarity::Fall));
        check_consistency(&sg).unwrap();
        check_csc(&sg).unwrap();
        assert!(matches!(
            check_usc(&sg),
            Err(CheckError::UscViolation { .. })
        ));
    }

    #[test]
    fn differing_excitation_fails_csc() {
        // Double output pulse: state 0 (code 0) excites b, state 2 (code 0)
        // does not excite b but excites a-like input; use output b twice.
        let mut sg = StateGraph::new(vec![
            meta("a", SignalKind::Input),
            meta("b", SignalKind::Output),
        ])
        .unwrap();
        // a+ b+ b- a- then b+ b- again from code 00 — second visit of 00
        // excites b (output) while first visit excites only a (input).
        let s0 = sg.add_state(0b00);
        let s1 = sg.add_state(0b01);
        let s2 = sg.add_state(0b11);
        let s3 = sg.add_state(0b01);
        let s4 = sg.add_state(0b00);
        let s5 = sg.add_state(0b10);
        sg.add_edge(s0, s1, lab(0, Polarity::Rise));
        sg.add_edge(s1, s2, lab(1, Polarity::Rise));
        sg.add_edge(s2, s3, lab(1, Polarity::Fall));
        sg.add_edge(s3, s4, lab(0, Polarity::Fall));
        sg.add_edge(s4, s5, lab(1, Polarity::Rise));
        sg.add_edge(s5, s0, lab(1, Polarity::Fall));
        check_consistency(&sg).unwrap();
        let err = check_csc(&sg).unwrap_err();
        match err {
            CheckError::CscViolation { differing, .. } => {
                assert_eq!(differing, vec!["b".to_string()]);
            }
            other => panic!("expected csc violation, got {other}"),
        }
    }

    #[test]
    fn wrong_polarity_fails_consistency() {
        let mut sg = StateGraph::new(vec![meta("a", SignalKind::Input)]).unwrap();
        let s0 = sg.add_state(0b1);
        let s1 = sg.add_state(0b0);
        // a+ out of a state where a is already 1.
        sg.add_edge(s0, s1, lab(0, Polarity::Rise));
        sg.add_edge(s1, s0, lab(0, Polarity::Rise));
        assert!(matches!(
            check_consistency(&sg),
            Err(CheckError::Inconsistent { .. })
        ));
    }

    #[test]
    fn multi_bit_flip_fails_consistency() {
        let mut sg = StateGraph::new(vec![
            meta("a", SignalKind::Input),
            meta("b", SignalKind::Output),
        ])
        .unwrap();
        let s0 = sg.add_state(0b00);
        let s1 = sg.add_state(0b11); // a+ also flips b's bit
        sg.add_edge(s0, s1, lab(0, Polarity::Rise));
        sg.add_edge(s1, s0, lab(0, Polarity::Fall));
        let err = check_consistency(&sg).unwrap_err();
        assert!(err.to_string().contains("other bits"), "{err}");
    }

    #[test]
    fn unreachable_state_is_reported() {
        let mut sg = StateGraph::new(vec![meta("a", SignalKind::Input)]).unwrap();
        let s0 = sg.add_state(0b0);
        let s1 = sg.add_state(0b1);
        sg.add_edge(s0, s1, lab(0, Polarity::Rise));
        sg.add_edge(s1, s0, lab(0, Polarity::Fall));
        sg.add_state(0b0); // orphan
        assert!(matches!(
            check_csc(&sg),
            Err(CheckError::Unreachable { state: 2 })
        ));
    }

    #[test]
    fn epsilon_edges_must_preserve_codes() {
        let mut sg = StateGraph::new(vec![meta("a", SignalKind::Input)]).unwrap();
        let s0 = sg.add_state(0b0);
        let s1 = sg.add_state(0b1);
        sg.add_edge(s0, s1, EdgeLabel::Epsilon);
        sg.add_edge(s1, s0, lab(0, Polarity::Fall));
        assert!(matches!(
            check_consistency(&sg),
            Err(CheckError::Inconsistent { .. })
        ));
    }
}
