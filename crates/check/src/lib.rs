//! An independent synthesis oracle and random-STG test harness.
//!
//! Everything else in this workspace *produces* synthesis results; this
//! crate *certifies* them, and deliberately shares no machinery with the
//! code it checks (following Verbeek & Schmaltz's separate-checker
//! discipline). It depends only on the passive data types — [`modsyn_stg`]
//! for STGs, [`modsyn_sg::StateGraph`] for solved graphs — and re-implements
//! every judgement from the definitions:
//!
//! * [`check_consistency`] — every edge fires its signal from the right
//!   value and toggles exactly that code bit (so +/- strictly alternate
//!   along every path),
//! * [`check_usc`] / [`check_csc`] — unique / complete state coding over
//!   the reachable states,
//! * [`check_speed_independence`] — the derived gate netlist, run in
//!   closed loop with the specification under the unbounded-gate-delay
//!   model, conforms and never withdraws a pending output excitation,
//! * [`check_equivalence`] — weak bisimilarity of two graphs after hiding
//!   internal (inserted state) signals,
//! * [`verify_solution`] — the conjunction a solved result must satisfy.
//!
//! For differential testing, [`gen_stg`] draws live safe free-choice STGs
//! from a seeded grammar ([`gen`] module docs) with [`StgRecipe::shrink`]
//! for minimisation, and [`rng::SplitMix64`] is the shared deterministic
//! PRNG.
//!
//! # Example
//!
//! ```
//! use modsyn_check::{check_consistency, check_csc, gen_stg, Profile};
//! use modsyn_sg::{derive, DeriveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stg = gen_stg(7, Profile::Small);
//! let sg = derive(&stg, &DeriveOptions::default())?;
//! check_consistency(&sg)?; // the token game must be consistent
//! let _ = check_csc(&sg); // may legitimately fail before resolution
//! # Ok(())
//! # }
//! ```

mod equiv;
mod error;
pub mod gen;
mod oracle;
pub mod rng;
mod speed;

pub use equiv::check_equivalence;
pub use error::CheckError;
pub use gen::{gen_recipe, gen_stg, GenPhase, Profile, StgRecipe};
pub use oracle::{check_consistency, check_csc, check_usc};
pub use speed::{check_speed_independence, GateNetlist, SopFn, SopLiteral};

use modsyn_sg::StateGraph;

/// Certifies one complete synthesis result: the solved graph must be
/// consistent and satisfy CSC, the gate netlist must be speed-independent
/// against it, and — when the unsolved specification graph is supplied —
/// the solved graph must be observation-equivalent to it after hiding the
/// inserted signals.
///
/// # Errors
///
/// The first failing judgement's [`CheckError`].
pub fn verify_solution(
    specification: Option<&StateGraph>,
    solved: &StateGraph,
    netlist: &GateNetlist,
) -> Result<(), CheckError> {
    check_consistency(solved)?;
    check_csc(solved)?;
    check_speed_independence(netlist, solved)?;
    if let Some(spec) = specification {
        check_equivalence(spec, solved)?;
    }
    Ok(())
}
