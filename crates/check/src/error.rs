//! Typed verdicts of the oracle.

use std::error::Error;
use std::fmt;

/// A definitional property the checked object violates.
///
/// Every variant carries enough context to locate the offending states by
/// index in the graph that was checked, so a differ failure message alone
/// identifies the counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// Two distinct reachable states carry the same code (USC violation).
    UscViolation {
        /// First state index.
        a: usize,
        /// Second state index.
        b: usize,
        /// The shared code, rendered as a 0/1 string in signal order.
        code: String,
    },
    /// Two distinct reachable states carry the same code but enable
    /// different non-input signal sets (CSC violation).
    CscViolation {
        /// First state index.
        a: usize,
        /// Second state index.
        b: usize,
        /// The shared code, rendered as a 0/1 string in signal order.
        code: String,
        /// Names of non-input signals enabled in `a` but not `b`, and vice
        /// versa.
        differing: Vec<String>,
    },
    /// An edge does not toggle exactly its own signal's bit, or fires a
    /// signal from the wrong value (consistency violation: some path would
    /// carry two `+` or two `-` edges of one signal in a row).
    Inconsistent {
        /// Source state of the offending edge.
        state: usize,
        /// Name of the fired signal (`"ε"` for a silent edge).
        signal: String,
        /// What exactly is wrong.
        detail: String,
    },
    /// A state is unreachable from the initial state, so code-based
    /// checks would silently ignore it.
    Unreachable {
        /// The unreachable state's index.
        state: usize,
    },
    /// A non-input signal of the graph has no gate function in the
    /// netlist handed to the simulator.
    MissingFunction {
        /// The undriven signal's name.
        signal: String,
    },
    /// The gate netlist commands an output change the specification does
    /// not prescribe in some state, or fails to command a prescribed one.
    Nonconforming {
        /// The state where circuit and specification disagree.
        state: usize,
        /// The disagreeing signal's name.
        signal: String,
        /// Whether the specification (as opposed to the circuit) wants the
        /// signal to change there.
        spec_excited: bool,
    },
    /// Firing one transition disables an excited non-input signal without
    /// it having fired: under the unbounded-gate-delay model the victim's
    /// gate may already be switching, so the circuit can glitch
    /// (computation interference / semi-modularity violation).
    NotSpeedIndependent {
        /// The state in which both signals were enabled.
        state: usize,
        /// The transition that fired, as `name+`/`name-`.
        fired: String,
        /// The non-input signal whose excitation was withdrawn.
        victim: String,
    },
    /// The two graphs are not observation-equivalent after hiding their
    /// internal signals: no weak bisimulation relates the initial states.
    NotEquivalent {
        /// Observable signal alphabet of the first graph.
        left_alphabet: Vec<String>,
        /// Observable signal alphabet of the second graph.
        right_alphabet: Vec<String>,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UscViolation { a, b, code } => {
                write!(f, "usc violation: states {a} and {b} share code {code}")
            }
            CheckError::CscViolation {
                a,
                b,
                code,
                differing,
            } => write!(
                f,
                "csc violation: states {a} and {b} share code {code} but differ on enabled \
                 non-inputs {{{}}}",
                differing.join(", ")
            ),
            CheckError::Inconsistent {
                state,
                signal,
                detail,
            } => write!(
                f,
                "inconsistent state assignment at state {state}, signal {signal}: {detail}"
            ),
            CheckError::Unreachable { state } => {
                write!(f, "state {state} is unreachable from the initial state")
            }
            CheckError::MissingFunction { signal } => {
                write!(f, "non-input signal {signal} has no gate function")
            }
            CheckError::Nonconforming {
                state,
                signal,
                spec_excited,
            } => write!(
                f,
                "circuit does not conform at state {state}: signal {signal} is {} by the \
                 specification but {} by the gates",
                if *spec_excited { "excited" } else { "stable" },
                if *spec_excited { "stable" } else { "excited" },
            ),
            CheckError::NotSpeedIndependent {
                state,
                fired,
                victim,
            } => write!(
                f,
                "not speed-independent: firing {fired} in state {state} disables pending \
                 non-input {victim} (possible glitch under unbounded gate delay)"
            ),
            CheckError::NotEquivalent {
                left_alphabet,
                right_alphabet,
            } => write!(
                f,
                "graphs are not observation-equivalent over alphabets {{{}}} / {{{}}}",
                left_alphabet.join(", "),
                right_alphabet.join(", ")
            ),
        }
    }
}

impl Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_counterexample() {
        let e = CheckError::CscViolation {
            a: 3,
            b: 7,
            code: "0101".into(),
            differing: vec!["y".into()],
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7') && s.contains("0101") && s.contains('y'));

        let e = CheckError::NotSpeedIndependent {
            state: 4,
            fired: "a+".into(),
            victim: "b".into(),
        };
        assert!(e.to_string().contains("a+"));
    }
}
