//! A tiny deterministic PRNG for seeded test-case generation.
//!
//! SplitMix64: full-period, statistically solid for test generation, and —
//! crucially for a differential harness — the same seed produces the same
//! sequence on every platform and every run, so a failing seed printed in
//! CI reproduces locally with no further state.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for the
        // tiny bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A bool that is true with probability `num/denom`.
    pub fn chance(&mut self, num: usize, denom: usize) -> bool {
        self.below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in 1..20 {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
