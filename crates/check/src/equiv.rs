//! Observable-behaviour equivalence of two state graphs.
//!
//! Two solved graphs (or a solved graph and its specification) are
//! *equivalent* when, after hiding every internal signal — inserted state
//! signals are [`modsyn_stg::SignalKind::Internal`] — their initial states
//! are related by a **weak bisimulation**: every observable move of one can
//! be matched by the other up to silent (τ) moves, recursively.
//!
//! The check computes the τ-saturated transition systems and runs partition
//! refinement on their disjoint union; strong bisimilarity of the saturated
//! systems coincides with weak bisimilarity of the originals.

use std::collections::{BTreeSet, HashMap};

use modsyn_sg::{EdgeLabel, StateGraph};
use modsyn_stg::Polarity;

use crate::CheckError;

/// The observable alphabet: names of non-internal signals, sorted.
fn alphabet(sg: &StateGraph) -> Vec<String> {
    let mut names: Vec<String> = sg
        .signals()
        .iter()
        .filter(|s| s.kind != modsyn_stg::SignalKind::Internal)
        .map(|s| s.name.clone())
        .collect();
    names.sort();
    names
}

/// τ (label `None`) for ε edges and internal-signal edges, the observable
/// `(name, polarity)` otherwise.
fn observable_label(sg: &StateGraph, label: EdgeLabel) -> Option<(String, Polarity)> {
    match label {
        EdgeLabel::Epsilon => None,
        EdgeLabel::Signal { signal, polarity } => {
            let meta = &sg.signals()[signal];
            if meta.kind == modsyn_stg::SignalKind::Internal {
                None
            } else {
                Some((meta.name.clone(), polarity))
            }
        }
    }
}

/// Per-state τ-reflexive-transitive closure.
fn tau_closure(states: usize, tau_edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); states];
    for &(from, to) in tau_edges {
        succ[from].push(to);
    }
    (0..states)
        .map(|start| {
            let mut seen = vec![false; states];
            let mut stack = vec![start];
            let mut closure = Vec::new();
            seen[start] = true;
            while let Some(s) = stack.pop() {
                closure.push(s);
                for &t in &succ[s] {
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            closure.sort_unstable();
            closure
        })
        .collect()
}

/// The weak transition relation of one graph under a shared label map:
/// `weak[s]` holds `(label, t)` pairs, label 0 = τ.
fn saturate(
    sg: &StateGraph,
    label_ids: &mut HashMap<(String, Polarity), usize>,
) -> Vec<BTreeSet<(usize, usize)>> {
    let n = sg.state_count();
    let mut tau_edges = Vec::new();
    let mut vis_from: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // per state: (label, to)
    for e in sg.edges() {
        match observable_label(sg, e.label) {
            None => tau_edges.push((e.from, e.to)),
            Some(key) => {
                let next = label_ids.len() + 1; // 0 is reserved for τ
                let id = *label_ids.entry(key).or_insert(next);
                vis_from[e.from].push((id, e.to));
            }
        }
    }
    let closure = tau_closure(n, &tau_edges);
    let mut weak: Vec<BTreeSet<(usize, usize)>> = vec![BTreeSet::new(); n];
    for s in 0..n {
        // s =τ=> t  iff  t ∈ τ*(s)   (reflexive by construction).
        for &t in &closure[s] {
            weak[s].insert((0, t));
        }
        // s =a=> t  iff  s' ∈ τ*(s), s' -a-> s'', t ∈ τ*(s'').
        for &mid in &closure[s] {
            for &(label, to) in &vis_from[mid] {
                for &t in &closure[to] {
                    weak[s].insert((label, t));
                }
            }
        }
    }
    weak
}

/// Checks weak bisimilarity of the two graphs' initial states over their
/// common observable alphabet.
///
/// # Errors
///
/// [`CheckError::NotEquivalent`] when the observable alphabets differ or
/// no weak bisimulation relates the initial states.
pub fn check_equivalence(a: &StateGraph, b: &StateGraph) -> Result<(), CheckError> {
    let alpha_a = alphabet(a);
    let alpha_b = alphabet(b);
    let not_equivalent = || CheckError::NotEquivalent {
        left_alphabet: alpha_a.clone(),
        right_alphabet: alpha_b.clone(),
    };
    if alpha_a != alpha_b {
        return Err(not_equivalent());
    }

    let mut label_ids = HashMap::new();
    let weak_a = saturate(a, &mut label_ids);
    let weak_b = saturate(b, &mut label_ids);

    // Partition refinement on the disjoint union of the saturated systems.
    let na = a.state_count();
    let total = na + b.state_count();
    let weak_of = |s: usize| -> &BTreeSet<(usize, usize)> {
        if s < na {
            &weak_a[s]
        } else {
            &weak_b[s - na]
        }
    };
    let offset_of = |s: usize| if s < na { 0 } else { na };

    let mut block = vec![0usize; total];
    let mut block_count = 1usize;
    loop {
        let mut signatures: HashMap<Vec<(usize, usize)>, usize> = HashMap::new();
        let mut next_block = vec![0usize; total];
        for s in 0..total {
            let mut sig: Vec<(usize, usize)> = weak_of(s)
                .iter()
                .map(|&(label, t)| (label, block[t + offset_of(s)]))
                .collect();
            sig.sort_unstable();
            sig.dedup();
            // Refine: states only stay together if they were together.
            sig.push((usize::MAX, block[s]));
            let fresh = signatures.len();
            next_block[s] = *signatures.entry(sig).or_insert(fresh);
        }
        let next_count = signatures.len();
        block = next_block;
        if next_count == block_count {
            break;
        }
        block_count = next_count;
    }

    if block[a.initial()] == block[na + b.initial()] {
        Ok(())
    } else {
        Err(not_equivalent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::SignalMeta;
    use modsyn_stg::SignalKind;

    fn meta(name: &str, kind: SignalKind) -> SignalMeta {
        SignalMeta {
            name: name.into(),
            kind,
        }
    }

    fn lab(signal: usize, polarity: Polarity) -> EdgeLabel {
        EdgeLabel::Signal { signal, polarity }
    }

    fn toggle(name: &str) -> StateGraph {
        let mut sg = StateGraph::new(vec![meta(name, SignalKind::Output)]).unwrap();
        let s0 = sg.add_state(0);
        let s1 = sg.add_state(1);
        sg.add_edge(s0, s1, lab(0, Polarity::Rise));
        sg.add_edge(s1, s0, lab(0, Polarity::Fall));
        sg
    }

    #[test]
    fn graph_is_equivalent_to_itself() {
        let sg = toggle("x");
        check_equivalence(&sg, &sg).unwrap();
    }

    #[test]
    fn internal_stutter_is_invisible() {
        // x+ x- vs x+ i+ x- i- with i internal: weakly bisimilar.
        let plain = toggle("x");
        let mut sg = StateGraph::new(vec![
            meta("x", SignalKind::Output),
            meta("i", SignalKind::Internal),
        ])
        .unwrap();
        let s00 = sg.add_state(0b00);
        let s01 = sg.add_state(0b01);
        let s11 = sg.add_state(0b11);
        let s10 = sg.add_state(0b10);
        sg.add_edge(s00, s01, lab(0, Polarity::Rise));
        sg.add_edge(s01, s11, lab(1, Polarity::Rise));
        sg.add_edge(s11, s10, lab(0, Polarity::Fall));
        sg.add_edge(s10, s00, lab(1, Polarity::Fall));
        check_equivalence(&plain, &sg).unwrap();
        check_equivalence(&sg, &plain).unwrap();
    }

    #[test]
    fn alphabet_mismatch_is_reported() {
        let a = toggle("x");
        let b = toggle("y");
        match check_equivalence(&a, &b) {
            Err(CheckError::NotEquivalent {
                left_alphabet,
                right_alphabet,
            }) => {
                assert_eq!(left_alphabet, vec!["x".to_string()]);
                assert_eq!(right_alphabet, vec!["y".to_string()]);
            }
            other => panic!("expected alphabet mismatch, got {other:?}"),
        }
    }

    #[test]
    fn different_behaviour_is_rejected() {
        // x+ x- cycle vs x+ x- x+/2 x-/2 where the second pulse is
        // guarded by an extra OBSERVABLE signal.
        let a = toggle("x");
        let mut b = StateGraph::new(vec![
            meta("x", SignalKind::Output),
            meta("y", SignalKind::Output),
        ])
        .unwrap();
        let s00 = b.add_state(0b00);
        let s01 = b.add_state(0b01);
        let s11 = b.add_state(0b11);
        let s10 = b.add_state(0b10);
        b.add_edge(s00, s01, lab(0, Polarity::Rise));
        b.add_edge(s01, s11, lab(1, Polarity::Rise));
        b.add_edge(s11, s10, lab(0, Polarity::Fall));
        b.add_edge(s10, s00, lab(1, Polarity::Fall));
        assert!(check_equivalence(&a, &b).is_err());
    }

    #[test]
    fn tau_choice_commitment_is_distinguished() {
        // Weak bisimulation is branching-sensitive: committing to one of
        // two observable moves via τ first is NOT equivalent to offering
        // both. (x+ | y+) vs τ;x+ | τ;y+ style.
        let mut offer = StateGraph::new(vec![
            meta("x", SignalKind::Output),
            meta("y", SignalKind::Output),
        ])
        .unwrap();
        let o0 = offer.add_state(0b00);
        let ox = offer.add_state(0b01);
        let oy = offer.add_state(0b10);
        offer.add_edge(o0, ox, lab(0, Polarity::Rise));
        offer.add_edge(o0, oy, lab(1, Polarity::Rise));
        offer.add_edge(ox, o0, lab(0, Polarity::Fall));
        offer.add_edge(oy, o0, lab(1, Polarity::Fall));

        let mut commit = StateGraph::new(vec![
            meta("x", SignalKind::Output),
            meta("y", SignalKind::Output),
        ])
        .unwrap();
        let c0 = commit.add_state(0b00);
        let cx0 = commit.add_state(0b00);
        let cy0 = commit.add_state(0b00);
        let cx = commit.add_state(0b01);
        let cy = commit.add_state(0b10);
        commit.add_edge(c0, cx0, EdgeLabel::Epsilon);
        commit.add_edge(c0, cy0, EdgeLabel::Epsilon);
        commit.add_edge(cx0, cx, lab(0, Polarity::Rise));
        commit.add_edge(cy0, cy, lab(1, Polarity::Rise));
        commit.add_edge(cx, c0, lab(0, Polarity::Fall));
        commit.add_edge(cy, c0, lab(1, Polarity::Fall));

        assert!(check_equivalence(&offer, &commit).is_err());
    }
}
