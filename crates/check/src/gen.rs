//! Seeded random generation of live, safe, free-choice STGs.
//!
//! A generated STG is described by a [`StgRecipe`] — a phase list drawn
//! from a small grammar (see [`GenPhase`]) and compiled through the
//! [`modsyn_stg::StgBuilder`] DSL, which produces 1-safe live cyclic nets
//! by construction:
//!
//! ```text
//! stg     ::= cycle( prelude ; phase* )
//! prelude ::= handshake(i0, o_) ; … ; pulse(o0) ; pulse(o1) ; …
//! phase   ::= pulse(o)                          -- o+ o-        (o output)
//!           | handshake(a, o)                   -- a+ o+ a- o-  (o output)
//!           | par(oa, ob) ; pulse(oc)           -- (oa ∥ ob) pulses
//!           | choice(i, j)                      -- i, j inputs: input-led
//!                                               --   free choice branches
//! ```
//!
//! Choices are always *input-led* (each branch starts with a distinct
//! input edge), keeping the specification inside the speed-independent
//! class: only the environment resolves choices, outputs stay persistent.
//!
//! Input transitions never fire back to back: a bare `i+ i-` pulse leaves
//! the states before and after it with equal codes separated by input
//! edges only, a CSC conflict *no* signal insertion can resolve (the
//! inserted signal would have to fire on an input edge, delaying the
//! environment). The grammar therefore always interleaves output activity
//! with input edges — inputs appear only as handshake or choice heads —
//! so generated conflicts stay within the insertion-solvable class and
//! the differ exercises full synthesis runs, not just typed give-ups.
//!
//! Recipes shrink by dropping phases ([`StgRecipe::shrink`]), so a differ
//! failure can be reduced to a minimal phase list while staying inside the
//! grammar.

use modsyn_stg::{Frag, SignalId, SignalKind, Stg, StgBuilder};

use crate::rng::SplitMix64;

/// Size class of a generated STG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// 1 input + 2 outputs, 1–4 random phases — solves in milliseconds.
    Small,
    /// 2 inputs + 3 outputs, 2–6 random phases — exercises concurrency
    /// blow-up and input choice.
    Medium,
}

impl Profile {
    /// `(inputs, outputs)` signal counts of the profile.
    pub fn signals(self) -> (usize, usize) {
        match self {
            Profile::Small => (1, 2),
            Profile::Medium => (2, 3),
        }
    }

    fn phase_budget(self, rng: &mut SplitMix64) -> usize {
        match self {
            Profile::Small => 1 + rng.below(4),
            Profile::Medium => 2 + rng.below(5),
        }
    }
}

/// One phase of a recipe. Signal operands are raw draws reduced modulo the
/// signal (or input) count at build time, so dropping phases during
/// shrinking never invalidates the remaining ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenPhase {
    /// `o+ o-` where `o` is the operand reduced into the *outputs*.
    Pulse(u8),
    /// `a+ o+ a- o-` where `a` ranges over all signals and `o` over the
    /// outputs (degrades to a pulse when both land on the same signal).
    /// With `a` an input this is the classic input-led handshake.
    Handshake(u8, u8),
    /// `(oa+ oa- ∥ ob+ ob-) ; oc+ oc-` over outputs, with `oc` chosen
    /// deterministically from `oa` (degrades to a pulse on collision).
    ParPulses(u8, u8),
    /// Free choice between two input-led branches
    /// `i+ ; out-pulse ; i-  []  j+ ; out-pulse ; j-` (degrades to a
    /// handshake when the profile has fewer than two inputs or the heads
    /// collide).
    InputChoice(u8, u8),
}

/// A reproducible generated-STG description: seed, profile and phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StgRecipe {
    /// The seed this recipe was generated from (kept for naming/reporting;
    /// shrunk recipes inherit it).
    pub seed: u64,
    /// The size profile.
    pub profile: Profile,
    /// The phase list (the prelude is implicit).
    pub phases: Vec<GenPhase>,
}

impl StgRecipe {
    /// Compiles the recipe into an STG named `gen-<seed>[-sN]`.
    pub fn build(&self) -> Stg {
        let mut b = StgBuilder::new(format!("gen-{}", self.seed));
        let ids = self
            .declare_signals(&mut b, "")
            .expect("generated names are unique");
        b.cycle(self.body(&ids))
            .expect("grammar only emits single-exit cycle bodies")
    }

    /// Declares this recipe's signals on an external builder, each name
    /// prefixed with `prefix`, and returns them in the order [`Self::body`]
    /// expects. This is the composition hook: a corpus engine can declare
    /// several recipes side by side (distinct prefixes keep the namespaces
    /// apart) and embed their bodies in one larger cycle.
    ///
    /// # Errors
    ///
    /// Returns [`modsyn_stg::StgError::DuplicateSignal`] if a prefixed name
    /// collides with one already declared on the builder.
    pub fn declare_signals(
        &self,
        b: &mut StgBuilder,
        prefix: &str,
    ) -> Result<Vec<SignalId>, modsyn_stg::StgError> {
        let (inputs, outputs) = self.profile.signals();
        (0..inputs + outputs)
            .map(|i| {
                if i < inputs {
                    b.signal(format!("{prefix}i{i}"), SignalKind::Input)
                } else {
                    b.signal(format!("{prefix}o{}", i - inputs), SignalKind::Output)
                }
            })
            .collect()
    }

    /// The recipe's cycle body over `ids` (as returned by
    /// [`Self::declare_signals`]): the implicit prelude followed by the
    /// phase list. The fragment is single-exit, so it can be used as a
    /// cycle body directly or sequenced into a composed cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is shorter than the profile's signal count.
    pub fn body(&self, ids: &[SignalId]) -> Frag {
        let (inputs, outputs) = self.profile.signals();
        let total = inputs + outputs;
        assert!(ids.len() >= total, "recipe needs {total} signals");
        let pulse = |s: usize| Frag::seq([Frag::rise(ids[s]), Frag::fall(ids[s])]);
        // Reduces a raw operand into the output signals.
        let out = |raw: usize| inputs + raw % outputs;

        // Prelude: every input runs one input-led handshake and every
        // output pulses once, so initial values are always inferable,
        // every signal appears in the cycle, and no input fires twice in
        // a row (see the module docs on solvability).
        let mut frags: Vec<Frag> = Vec::new();
        for k in 0..inputs {
            let o = ids[out(k)];
            frags.push(Frag::seq([
                Frag::rise(ids[k]),
                Frag::rise(o),
                Frag::fall(ids[k]),
                Frag::fall(o),
            ]));
        }
        frags.extend((0..outputs).map(|o| pulse(inputs + o)));
        for &phase in &self.phases {
            let frag = match phase {
                GenPhase::Pulse(a) => pulse(out(a as usize)),
                GenPhase::Handshake(a, b) => {
                    let (a, b) = (a as usize % total, out(b as usize));
                    if a == b {
                        pulse(a)
                    } else {
                        Frag::seq([
                            Frag::rise(ids[a]),
                            Frag::rise(ids[b]),
                            Frag::fall(ids[a]),
                            Frag::fall(ids[b]),
                        ])
                    }
                }
                GenPhase::ParPulses(a, b) => {
                    let (a, b) = (out(a as usize), out(b as usize));
                    if a == b {
                        pulse(a)
                    } else {
                        Frag::seq([Frag::par([pulse(a), pulse(b)]), pulse(out(a + 1))])
                    }
                }
                GenPhase::InputChoice(i, j) => {
                    let (i, j) = (i as usize % inputs.max(1), j as usize % inputs.max(1));
                    if inputs < 2 || i == j {
                        // No real choice available: degrade to a handshake
                        // between the head and some output.
                        let o = ids[out(i + j)];
                        Frag::seq([
                            Frag::rise(ids[i]),
                            Frag::rise(o),
                            Frag::fall(ids[i]),
                            Frag::fall(o),
                        ])
                    } else {
                        let branch = |head: usize, o: usize| {
                            Frag::seq([Frag::rise(ids[head]), pulse(o), Frag::fall(ids[head])])
                        };
                        Frag::choice([branch(i, out(i)), branch(j, out(j))])
                    }
                }
            };
            frags.push(frag);
        }
        Frag::seq(frags)
    }

    /// All one-phase-smaller recipes, for shrinking a failing case. The
    /// implicit prelude is not shrinkable, so the minimum is the bare
    /// prelude cycle.
    pub fn shrink(&self) -> Vec<StgRecipe> {
        (0..self.phases.len())
            .map(|drop| {
                let mut phases = self.phases.clone();
                phases.remove(drop);
                StgRecipe {
                    seed: self.seed,
                    profile: self.profile,
                    phases,
                }
            })
            .collect()
    }
}

/// Draws a recipe for `seed` under `profile`. Deterministic: equal
/// arguments give equal recipes.
pub fn gen_recipe(seed: u64, profile: Profile) -> StgRecipe {
    let mut rng = SplitMix64::new(seed);
    let budget = profile.phase_budget(&mut rng);
    let phases = (0..budget)
        .map(|_| {
            let a = rng.below(256) as u8;
            let b = rng.below(256) as u8;
            match rng.below(100) {
                0..=34 => GenPhase::Pulse(a),
                35..=59 => GenPhase::Handshake(a, b),
                60..=84 => GenPhase::ParPulses(a, b),
                _ => GenPhase::InputChoice(a, b),
            }
        })
        .collect();
    StgRecipe {
        seed,
        profile,
        phases,
    }
}

/// Generates the STG for `seed` under `profile`:
/// `gen_recipe(seed, profile).build()`.
pub fn gen_stg(seed: u64, profile: Profile) -> Stg {
    gen_recipe(seed, profile).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(
                gen_recipe(seed, Profile::Small),
                gen_recipe(seed, Profile::Small)
            );
            let a = gen_stg(seed, Profile::Medium);
            let b = gen_stg(seed, Profile::Medium);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn generated_nets_are_live_and_safe() {
        for seed in 0..30 {
            for profile in [Profile::Small, Profile::Medium] {
                let stg = gen_stg(seed, profile);
                let g = stg
                    .net()
                    .reachability(&ReachabilityOptions::default())
                    .unwrap_or_else(|e| panic!("seed {seed} {profile:?}: {e}"));
                assert!(g.is_safe(), "seed {seed} {profile:?} not safe");
                assert!(
                    g.deadlocks().is_empty(),
                    "seed {seed} {profile:?} deadlocks"
                );
            }
        }
    }

    #[test]
    fn profiles_set_signal_counts() {
        let small = gen_stg(3, Profile::Small);
        assert_eq!(small.signal_count(), 3);
        let medium = gen_stg(3, Profile::Medium);
        assert_eq!(medium.signal_count(), 5);
    }

    #[test]
    fn shrinking_drops_exactly_one_phase() {
        let recipe = gen_recipe(11, Profile::Medium);
        let shrunk = recipe.shrink();
        assert_eq!(shrunk.len(), recipe.phases.len());
        for s in &shrunk {
            assert_eq!(s.phases.len(), recipe.phases.len() - 1);
            // Every shrunk recipe still builds a valid net.
            let stg = s.build();
            assert!(stg.signal_count() >= 3);
        }
    }

    #[test]
    fn seed_is_embedded_in_the_model_name() {
        assert_eq!(gen_stg(42, Profile::Small).name(), "gen-42");
    }
}
