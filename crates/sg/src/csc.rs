//! USC/CSC conflict detection (paper Section 2).

use std::collections::HashMap;

use crate::StateGraph;

/// Result of analysing a state graph for state-coding conflicts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CscAnalysis {
    /// Pairs of distinct states with equal codes **and equal** non-input
    /// excitation — allowed by CSC, but constrained during state-signal
    /// insertion so no new conflict appears (`N_usc` in the paper).
    pub usc_pairs: Vec<(usize, usize)>,
    /// Pairs of distinct states with equal codes and **different** non-input
    /// excitation — genuine CSC violations (`N_csc`).
    pub csc_pairs: Vec<(usize, usize)>,
    /// `Max_csc`: the largest number of excitation-distinct classes sharing
    /// one code.
    pub max_csc: usize,
    /// `ceil(log2(Max_csc))` — the paper's lower bound on the number of
    /// state signals needed.
    pub lower_bound: usize,
}

impl CscAnalysis {
    /// Whether the graph satisfies complete state coding.
    pub fn satisfies_csc(&self) -> bool {
        self.csc_pairs.is_empty()
    }

    /// Whether the graph satisfies unique state coding (no code sharing at
    /// all).
    pub fn satisfies_usc(&self) -> bool {
        self.csc_pairs.is_empty() && self.usc_pairs.is_empty()
    }
}

impl StateGraph {
    /// Whether a CSC conflict between states `x` and `y` is *structurally
    /// resolvable*: a state signal distinguishing them must hold opposite
    /// stable values at the two states, so it has to fire somewhere on
    /// every `x → y` path and on every `y → x` path — and it may only fire
    /// across **non-input** edges. If either state reaches the other
    /// through input edges alone, no insertion can separate them.
    pub fn csc_pair_structurally_resolvable(&self, x: usize, y: usize) -> bool {
        !self.input_only_reach(x, y) && !self.input_only_reach(y, x)
    }

    /// Whether `to` is reachable from `from` using only input-labelled (or
    /// ε) edges.
    fn input_only_reach(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(s) = stack.pop() {
            for e in self.out_edges(s) {
                let follow = match e.label {
                    crate::EdgeLabel::Epsilon => true,
                    crate::EdgeLabel::Signal { signal, .. } => {
                        !self.signals()[signal].kind.is_non_input()
                    }
                };
                if follow && !seen[e.to] {
                    if e.to == to {
                        return true;
                    }
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        false
    }

    /// The CSC pairs of `analysis` that fail
    /// [`StateGraph::csc_pair_structurally_resolvable`].
    pub fn unresolvable_csc_pairs(&self, analysis: &CscAnalysis) -> Vec<(usize, usize)> {
        analysis
            .csc_pairs
            .iter()
            .copied()
            .filter(|&(x, y)| !self.csc_pair_structurally_resolvable(x, y))
            .collect()
    }

    /// Detects all USC/CSC conflicts and computes the state-signal lower
    /// bound.
    pub fn csc_analysis(&self) -> CscAnalysis {
        // Group states by code.
        let mut by_code: HashMap<u64, Vec<usize>> = HashMap::new();
        for s in 0..self.state_count() {
            by_code.entry(self.code(s)).or_default().push(s);
        }

        let mut analysis = CscAnalysis {
            max_csc: 1,
            ..Default::default()
        };
        if self.state_count() == 0 {
            analysis.max_csc = 0;
            return analysis;
        }
        // HashMap iteration order varies per instance; downstream consumers
        // (the SAT-CSC encoder numbers auxiliary variables and emits clauses
        // in pair order) need a deterministic pair list, so process the
        // groups in state order.
        let mut groups: Vec<&Vec<usize>> = by_code.values().filter(|g| g.len() >= 2).collect();
        groups.sort_unstable_by_key(|g| g[0]);
        for group in groups {
            // Subgroup by non-input excitation.
            let mut classes: HashMap<u64, Vec<usize>> = HashMap::new();
            for &s in group {
                classes
                    .entry(self.non_input_excitation(s))
                    .or_default()
                    .push(s);
            }
            analysis.max_csc = analysis.max_csc.max(classes.len());
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if self.non_input_excitation(a) == self.non_input_excitation(b) {
                        analysis.usc_pairs.push((a, b));
                    } else {
                        analysis.csc_pairs.push((a, b));
                    }
                }
            }
        }
        analysis.lower_bound =
            usize::BITS as usize - (analysis.max_csc.max(1) - 1).leading_zeros() as usize;
        analysis
    }
}

#[cfg(test)]
mod tests {
    use crate::{derive, DeriveOptions, EdgeLabel, SignalMeta};
    use modsyn_stg::{benchmarks, parse_g, Polarity, SignalKind};

    #[test]
    fn clean_handshake_satisfies_csc() {
        let stg = parse_g(
            ".model hs\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let csc = sg.csc_analysis();
        assert!(csc.satisfies_csc());
        assert!(csc.satisfies_usc());
        assert_eq!(csc.max_csc, 1);
        assert_eq!(csc.lower_bound, 0);
    }

    #[test]
    fn pair_order_is_deterministic_across_calls_and_threads() {
        // The SAT-CSC encoder numbers auxiliary variables in pair order, so
        // two analyses of the same graph must agree exactly — including
        // when one runs on a worker thread (serial vs --jobs runs must
        // produce bit-identical formulas).
        let stg = benchmarks::mr1();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let a1 = sg.csc_analysis();
        let a2 = sg.csc_analysis();
        assert_eq!(a1.usc_pairs, a2.usc_pairs);
        assert_eq!(a1.csc_pairs, a2.csc_pairs);
        let sg2 = sg.clone();
        let a3 = std::thread::spawn(move || sg2.csc_analysis())
            .join()
            .unwrap();
        assert_eq!(a1.usc_pairs, a3.usc_pairs);
        assert_eq!(a1.csc_pairs, a3.csc_pairs);
    }

    #[test]
    fn double_pulse_output_violates_csc() {
        // a+ b+ b- a- b+ b-: states after a+ and after the first b- share
        // code 10 with different b excitation; likewise 00.
        let stg = parse_g(
            ".model dp\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ b-\nb- a-\na- b+/2\nb+/2 b-/2\nb-/2 a+\n.marking { <b-/2,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let csc = sg.csc_analysis();
        assert!(!csc.satisfies_csc());
        assert_eq!(csc.csc_pairs.len(), 2);
        assert_eq!(csc.max_csc, 2);
        assert_eq!(csc.lower_bound, 1);
    }

    #[test]
    fn usc_only_conflicts_are_distinguished() {
        // Two identical input pulses: codes repeat but excitation is equal,
        // so USC fails while CSC holds.
        let stg = parse_g(
            ".model u\n.inputs a\n.graph\na+ a-\na- a+/2\na+/2 a-/2\na-/2 a+\n.marking { <a-/2,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let csc = sg.csc_analysis();
        assert!(csc.satisfies_csc());
        assert!(!csc.satisfies_usc());
        assert_eq!(csc.usc_pairs.len(), 2);
    }

    #[test]
    fn every_benchmark_has_csc_conflicts() {
        // The paper inserts state signals into every Table-1 row, so every
        // stand-in must actually violate CSC.
        for (name, stg) in benchmarks::all() {
            let sg =
                derive(&stg, &DeriveOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
            let csc = sg.csc_analysis();
            assert!(
                !csc.satisfies_csc(),
                "{name}: expected CSC conflicts, found none"
            );
            assert!(csc.lower_bound >= 1, "{name}");
        }
    }

    #[test]
    fn lower_bound_grows_logarithmically() {
        // Hand-build a graph with 5 equal-coded, excitation-distinct states.
        let signals: Vec<SignalMeta> = (0..5)
            .map(|i| SignalMeta {
                name: format!("o{i}"),
                kind: SignalKind::Output,
            })
            .collect();
        let mut sg = crate::StateGraph::new(signals).unwrap();
        let states: Vec<usize> = (0..5).map(|_| sg.add_state(0)).collect();
        let sink = sg.add_state(0b11111);
        // State i excites output i only (edges don't need to be consistent
        // for this analysis-level test).
        for (i, &s) in states.iter().enumerate() {
            sg.add_edge(
                s,
                sink,
                EdgeLabel::Signal {
                    signal: i,
                    polarity: Polarity::Rise,
                },
            );
        }
        let csc = sg.csc_analysis();
        assert_eq!(csc.max_csc, 5);
        assert_eq!(csc.lower_bound, 3); // ceil(log2 5)
    }
}
