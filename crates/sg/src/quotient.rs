//! Signal hiding and state merging — the modular state graph construction.
//!
//! Hiding a signal labels all its transitions ε and merges ε-connected
//! states (paper Section 3.3, "similar to the conversion of a finite
//! automaton with ε transitions to one without").

use std::collections::HashMap;

use crate::{EdgeLabel, SgError, SignalMeta, StateGraph};

/// Result of hiding signals: the merged graph plus the cover maps needed to
/// propagate assignments back (paper Section 3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quotient {
    /// The modular (merged) state graph over the kept signals.
    pub graph: StateGraph,
    /// For every original state, the quotient state that covers it
    /// (`cover(M)` in the paper).
    pub state_map: Vec<usize>,
    /// For every original signal index, its index in the quotient graph
    /// (`None` for hidden signals).
    pub signal_map: Vec<Option<usize>>,
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

impl StateGraph {
    /// Hides the given signals: their transitions become ε and ε-connected
    /// states merge into single quotient states. Pre-existing ε edges merge
    /// as well.
    ///
    /// # Errors
    ///
    /// Returns [`SgError::TooManySignals`] only in the degenerate case of a
    /// malformed signal list (cannot normally happen when shrinking).
    ///
    /// # Panics
    ///
    /// Panics if a hidden index is out of range.
    pub fn hide_signals(&self, hidden: &[usize]) -> Result<Quotient, SgError> {
        let hidden_mask: u64 = hidden
            .iter()
            .map(|&s| {
                assert!(s < self.signals().len(), "hidden signal out of range");
                1u64 << s
            })
            .fold(0, |a, b| a | b);

        let is_hidden_label = |label: EdgeLabel| match label {
            EdgeLabel::Epsilon => true,
            EdgeLabel::Signal { signal, .. } => hidden_mask >> signal & 1 == 1,
        };

        // Merge ε-connected states.
        let mut uf = UnionFind::new(self.state_count());
        for e in self.edges() {
            if is_hidden_label(e.label) {
                uf.union(e.from, e.to);
            }
        }

        // Compact signal universe.
        let mut signal_map: Vec<Option<usize>> = Vec::with_capacity(self.signals().len());
        let mut kept_signals: Vec<SignalMeta> = Vec::new();
        for (i, meta) in self.signals().iter().enumerate() {
            if hidden_mask >> i & 1 == 1 {
                signal_map.push(None);
            } else {
                signal_map.push(Some(kept_signals.len()));
                kept_signals.push(meta.clone());
            }
        }
        let mut graph = StateGraph::new(kept_signals)?;

        // Restrict a code to the kept signals.
        let restrict = |code: u64| -> u64 {
            let mut out = 0u64;
            for (i, mapped) in signal_map.iter().enumerate() {
                if let Some(j) = mapped {
                    if code >> i & 1 == 1 {
                        out |= 1 << j;
                    }
                }
            }
            out
        };

        // Allocate quotient states per union-find class.
        let mut class_to_state: HashMap<usize, usize> = HashMap::new();
        let mut state_map = vec![0usize; self.state_count()];
        #[allow(clippy::needless_range_loop)] // `s` is also fed to `uf.find`/`self.code`
        for s in 0..self.state_count() {
            let root = uf.find(s);
            let q = *class_to_state
                .entry(root)
                .or_insert_with(|| graph.add_state(restrict(self.code(s))));
            state_map[s] = q;
            debug_assert_eq!(
                graph.code(q),
                restrict(self.code(s)),
                "merged states must agree on kept-signal values"
            );
        }
        graph.set_initial(state_map[self.initial()]);

        // Surviving edges, deduplicated.
        let mut seen: HashMap<(usize, usize, EdgeLabel), ()> = HashMap::new();
        for e in self.edges() {
            if is_hidden_label(e.label) {
                continue;
            }
            let EdgeLabel::Signal { signal, polarity } = e.label else {
                continue;
            };
            let label = EdgeLabel::Signal {
                signal: signal_map[signal].expect("kept signal maps"),
                polarity,
            };
            let key = (state_map[e.from], state_map[e.to], label);
            if seen.insert(key, ()).is_none() {
                graph.add_edge(key.0, key.1, label);
            }
        }

        Ok(Quotient {
            graph,
            state_map,
            signal_map,
        })
    }

    /// [`StateGraph::hide_signals`] with lightweight observability counters.
    ///
    /// Deliberately records counters only (no span): input-set search calls
    /// this in a hot greedy loop, and per-call spans would dominate the
    /// trace. Counters aggregate across calls: `sg.hide.calls`,
    /// `sg.hide.merged_states` (states eliminated by ε-merging).
    pub fn hide_signals_traced(
        &self,
        hidden: &[usize],
        tracer: &modsyn_obs::Tracer,
    ) -> Result<Quotient, SgError> {
        let quotient = self.hide_signals(hidden)?;
        if tracer.is_enabled() {
            tracer.counter("sg.hide.calls", 1);
            tracer.counter(
                "sg.hide.merged_states",
                (self.state_count() - quotient.graph.state_count()) as u64,
            );
        }
        Ok(quotient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive, DeriveOptions};
    use modsyn_stg::parse_g;

    fn double_pulse() -> StateGraph {
        let stg = parse_g(
            ".model dp\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ b-\nb- a-\na- b+/2\nb+/2 b-/2\nb-/2 a+\n.marking { <b-/2,a+> }\n.end\n",
        )
        .unwrap();
        derive(&stg, &DeriveOptions::default()).unwrap()
    }

    #[test]
    fn hiding_a_signal_merges_its_transitions() {
        let sg = double_pulse();
        assert_eq!(sg.state_count(), 6);
        let a = sg.signal_index("a").unwrap();
        let q = sg.hide_signals(&[a]).unwrap();
        // a+ and a- edges collapse: 6 states -> 4.
        assert_eq!(q.graph.state_count(), 4);
        assert_eq!(q.graph.signals().len(), 1);
        assert_eq!(q.signal_map[a], None);
        // Cover map is total and surjective.
        assert_eq!(q.state_map.len(), 6);
        let mut covered: Vec<usize> = q.state_map.clone();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), q.graph.state_count());
    }

    #[test]
    fn merged_codes_restrict_to_kept_signals() {
        let sg = double_pulse();
        let a = sg.signal_index("a").unwrap();
        let b = sg.signal_index("b").unwrap();
        let q = sg.hide_signals(&[a]).unwrap();
        for s in 0..sg.state_count() {
            let orig_b = sg.value(s, b);
            let quot_b = q.graph.value(q.state_map[s], 0);
            assert_eq!(orig_b, quot_b, "state {s}");
        }
    }

    #[test]
    fn hiding_nothing_is_identity_up_to_iso() {
        let sg = double_pulse();
        let q = sg.hide_signals(&[]).unwrap();
        assert_eq!(q.graph.state_count(), sg.state_count());
        assert_eq!(q.graph.edge_count(), sg.edge_count());
    }

    #[test]
    fn hiding_everything_collapses_to_one_state() {
        let sg = double_pulse();
        let q = sg.hide_signals(&[0, 1]).unwrap();
        assert_eq!(q.graph.state_count(), 1);
        assert_eq!(q.graph.edge_count(), 0);
    }

    #[test]
    fn quotient_preserves_initial_state() {
        let sg = double_pulse();
        let a = sg.signal_index("a").unwrap();
        let q = sg.hide_signals(&[a]).unwrap();
        assert_eq!(q.graph.initial(), q.state_map[sg.initial()]);
    }

    #[test]
    fn parallel_edges_are_deduplicated() {
        let sg = double_pulse();
        let b = sg.signal_index("b").unwrap();
        let q = sg.hide_signals(&[b]).unwrap();
        // Only a's 2 edges survive; the merged graph has 2 states.
        assert_eq!(q.graph.state_count(), 2);
        assert!(q.graph.edge_count() <= 2);
    }
}
