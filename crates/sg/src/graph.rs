//! The state-graph data structure.

use std::fmt;

use modsyn_stg::{Polarity, SignalKind};

use crate::SgError;

/// Name and role of a signal tracked in a state graph's code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalMeta {
    /// Signal name.
    pub name: String,
    /// Interface role (inserted state signals are [`SignalKind::Internal`]).
    pub kind: SignalKind,
}

/// Label on a state-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// A signal edge: position in the graph's signal list plus polarity.
    Signal {
        /// Index into [`StateGraph::signals`].
        signal: usize,
        /// Rising or falling.
        polarity: Polarity,
    },
    /// A silent (ε) edge — produced by signal hiding or dummy transitions.
    Epsilon,
}

/// One transition of the state graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source state index.
    pub from: usize,
    /// Target state index.
    pub to: usize,
    /// The fired signal edge (or ε).
    pub label: EdgeLabel,
}

/// A finite automaton over binary state codes.
///
/// Codes are packed into a `u64` (bit *i* = value of signal *i*), limiting
/// graphs to 64 signals — far beyond the paper's largest benchmark (11
/// signals + a handful of state signals).
///
/// ```
/// use modsyn_sg::{EdgeLabel, StateGraph, SignalMeta};
/// use modsyn_stg::{Polarity, SignalKind};
///
/// # fn main() -> Result<(), modsyn_sg::SgError> {
/// let mut sg = StateGraph::new(vec![SignalMeta {
///     name: "a".into(),
///     kind: SignalKind::Output,
/// }])?;
/// let s0 = sg.add_state(0b0);
/// let s1 = sg.add_state(0b1);
/// sg.add_edge(s0, s1, EdgeLabel::Signal { signal: 0, polarity: Polarity::Rise });
/// sg.add_edge(s1, s0, EdgeLabel::Signal { signal: 0, polarity: Polarity::Fall });
/// assert_eq!(sg.state_count(), 2);
/// assert_eq!(sg.excited(s0, 0), Some(Polarity::Rise));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateGraph {
    signals: Vec<SignalMeta>,
    codes: Vec<u64>,
    edges: Vec<Edge>,
    out: Vec<Vec<u32>>,
    initial: usize,
}

impl StateGraph {
    /// Creates an empty graph over the given signals.
    ///
    /// # Errors
    ///
    /// Returns [`SgError::TooManySignals`] beyond 64 signals.
    pub fn new(signals: Vec<SignalMeta>) -> Result<Self, SgError> {
        if signals.len() > 64 {
            return Err(SgError::TooManySignals {
                requested: signals.len(),
            });
        }
        Ok(StateGraph {
            signals,
            codes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            initial: 0,
        })
    }

    /// Adds a state with the given packed code, returning its index.
    pub fn add_state(&mut self, code: u64) -> usize {
        self.codes.push(code);
        self.out.push(Vec::new());
        self.codes.len() - 1
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint or the label's signal is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, label: EdgeLabel) {
        assert!(
            from < self.codes.len() && to < self.codes.len(),
            "edge endpoint out of range"
        );
        if let EdgeLabel::Signal { signal, .. } = label {
            assert!(signal < self.signals.len(), "label signal out of range");
        }
        let idx = self.edges.len() as u32;
        self.edges.push(Edge { from, to, label });
        self.out[from].push(idx);
    }

    /// Marks a state as initial.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn set_initial(&mut self, state: usize) {
        assert!(state < self.codes.len());
        self.initial = state;
    }

    /// The initial state's index.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.codes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The signal metadata, in code-bit order.
    pub fn signals(&self) -> &[SignalMeta] {
        &self.signals
    }

    /// Index of a signal by name.
    pub fn signal_index(&self, name: &str) -> Option<usize> {
        self.signals.iter().position(|s| s.name == name)
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of a state.
    pub fn out_edges(&self, state: usize) -> impl Iterator<Item = &Edge> + '_ {
        self.out[state]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Packed code of a state.
    pub fn code(&self, state: usize) -> u64 {
        self.codes[state]
    }

    /// Value of `signal` in `state`.
    pub fn value(&self, state: usize, signal: usize) -> bool {
        self.codes[state] >> signal & 1 == 1
    }

    /// The polarity with which `signal` is excited in `state` (an outgoing
    /// edge fires it), if any.
    pub fn excited(&self, state: usize, signal: usize) -> Option<Polarity> {
        self.out_edges(state).find_map(|e| match e.label {
            EdgeLabel::Signal {
                signal: s,
                polarity,
            } if s == signal => Some(polarity),
            _ => None,
        })
    }

    /// Bitmask of non-input signals excited in `state` — the quantity CSC
    /// compares between equal-coded states.
    pub fn non_input_excitation(&self, state: usize) -> u64 {
        let mut mask = 0u64;
        for e in self.out_edges(state) {
            if let EdgeLabel::Signal { signal, .. } = e.label {
                if self.signals[signal].kind.is_non_input() {
                    mask |= 1 << signal;
                }
            }
        }
        mask
    }

    /// The *implied value* of `signal` in `state`: its next stable value —
    /// flipped when excited, current otherwise. This is what the logic
    /// function of a non-input signal must produce in this state.
    pub fn implied_value(&self, state: usize, signal: usize) -> bool {
        match self.excited(state, signal) {
            Some(p) => p.value_after(),
            None => self.value(state, signal),
        }
    }

    /// All packed state codes, indexed by state. The independent checkers
    /// in `modsyn-check` read codes through this slice rather than the
    /// analysis helpers, so a bug in the latter cannot leak into the
    /// oracle's view of the graph.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// The enabled (excited) signal set of a state, straight off the
    /// outgoing edges: every `(signal, polarity)` some edge fires. ε edges
    /// contribute nothing. Sorted by signal index; a signal enabled by
    /// several edges appears once.
    pub fn enabled_set(&self, state: usize) -> Vec<(usize, Polarity)> {
        let mut set: Vec<(usize, Polarity)> = self
            .out_edges(state)
            .filter_map(|e| match e.label {
                EdgeLabel::Signal { signal, polarity } => Some((signal, polarity)),
                EdgeLabel::Epsilon => None,
            })
            .collect();
        set.sort_unstable_by_key(|&(s, _)| s);
        set.dedup();
        set
    }

    /// Formats a state's code as a 0/1 string in signal order.
    pub fn code_string(&self, state: usize) -> String {
        (0..self.signals.len())
            .map(|s| if self.value(state, s) { '1' } else { '0' })
            .collect()
    }

    /// Mask with one bit per declared signal.
    pub fn full_mask(&self) -> u64 {
        if self.signals.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.signals.len()) - 1
        }
    }
}

impl fmt::Display for StateGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state graph: {} states, {} edges, {} signals",
            self.codes.len(),
            self.edges.len(),
            self.signals.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, kind: SignalKind) -> SignalMeta {
        SignalMeta {
            name: name.into(),
            kind,
        }
    }

    fn two_signal_cycle() -> StateGraph {
        // a+ b+ a- b- cycle; a input, b output.
        let mut sg = StateGraph::new(vec![
            meta("a", SignalKind::Input),
            meta("b", SignalKind::Output),
        ])
        .unwrap();
        let s = [
            sg.add_state(0b00),
            sg.add_state(0b01),
            sg.add_state(0b11),
            sg.add_state(0b10),
        ];
        let lab = |signal, polarity| EdgeLabel::Signal { signal, polarity };
        sg.add_edge(s[0], s[1], lab(0, Polarity::Rise));
        sg.add_edge(s[1], s[2], lab(1, Polarity::Rise));
        sg.add_edge(s[2], s[3], lab(0, Polarity::Fall));
        sg.add_edge(s[3], s[0], lab(1, Polarity::Fall));
        sg
    }

    #[test]
    fn values_and_codes() {
        let sg = two_signal_cycle();
        assert!(sg.value(1, 0));
        assert!(!sg.value(1, 1));
        assert_eq!(sg.code_string(2), "11");
        assert_eq!(sg.full_mask(), 0b11);
    }

    #[test]
    fn excitation_and_implied_values() {
        let sg = two_signal_cycle();
        // State 1 (a=1,b=0): b+ is enabled.
        assert_eq!(sg.excited(1, 1), Some(Polarity::Rise));
        assert!(
            sg.implied_value(1, 1),
            "excited to rise implies next value 1"
        );
        assert!(!sg.implied_value(2, 0) || sg.excited(2, 0).is_some());
        // State 0: nothing excites b.
        assert_eq!(sg.excited(0, 1), None);
        assert!(!sg.implied_value(0, 1));
    }

    #[test]
    fn non_input_excitation_masks_inputs() {
        let sg = two_signal_cycle();
        assert_eq!(sg.non_input_excitation(0), 0, "only a+ (input) is excited");
        assert_eq!(sg.non_input_excitation(1), 0b10, "b+ is excited");
    }

    #[test]
    fn codes_and_enabled_set_accessors() {
        let sg = two_signal_cycle();
        assert_eq!(sg.codes(), &[0b00, 0b01, 0b11, 0b10]);
        assert_eq!(sg.enabled_set(0), vec![(0, Polarity::Rise)]);
        assert_eq!(sg.enabled_set(1), vec![(1, Polarity::Rise)]);
        assert_eq!(sg.enabled_set(2), vec![(0, Polarity::Fall)]);
    }

    #[test]
    fn too_many_signals_is_rejected() {
        let signals = (0..65)
            .map(|i| meta(&format!("s{i}"), SignalKind::Input))
            .collect();
        assert!(matches!(
            StateGraph::new(signals),
            Err(SgError::TooManySignals { requested: 65 })
        ));
    }

    #[test]
    fn display_counts() {
        let sg = two_signal_cycle();
        assert_eq!(sg.to_string(), "state graph: 4 states, 4 edges, 2 signals");
    }
}
