//! Graphviz DOT export for state graphs.

use std::fmt::Write as _;

use modsyn_stg::Polarity;

use crate::{EdgeLabel, StateGraph};

/// Renders a state graph as a Graphviz `dot` digraph: states labelled with
/// their binary codes, the initial state double-circled, and conflicting
/// states (same code) filled.
///
/// ```
/// use modsyn_sg::{derive, to_dot, DeriveOptions};
/// use modsyn_stg::benchmarks;
/// # fn main() -> Result<(), modsyn_sg::SgError> {
/// let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default())?;
/// let dot = to_dot(&sg);
/// assert!(dot.contains("doublecircle"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &StateGraph) -> String {
    let analysis = graph.csc_analysis();
    let mut conflicting = vec![false; graph.state_count()];
    for &(a, b) in &analysis.csc_pairs {
        conflicting[a] = true;
        conflicting[b] = true;
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph sg {{");
    #[allow(clippy::needless_range_loop)] // `s` names the state, not just an index
    for s in 0..graph.state_count() {
        let shape = if s == graph.initial() {
            "doublecircle"
        } else {
            "circle"
        };
        let fill = if conflicting[s] {
            ", style=filled, fillcolor=lightcoral"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  s{s} [shape={shape}{fill}, label=\"{}\\n{}\"];",
            s,
            graph.code_string(s)
        );
    }
    for e in graph.edges() {
        let label = match e.label {
            EdgeLabel::Signal { signal, polarity } => format!(
                "{}{}",
                graph.signals()[signal].name,
                match polarity {
                    Polarity::Rise => "+",
                    Polarity::Fall => "-",
                }
            ),
            EdgeLabel::Epsilon => "ε".to_string(),
        };
        let _ = writeln!(out, "  s{} -> s{} [label=\"{label}\"];", e.from, e.to);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    #[test]
    fn conflicting_states_are_highlighted() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let dot = to_dot(&sg);
        assert!(dot.contains("lightcoral"));
        assert_eq!(dot.matches("->").count(), sg.edge_count());
    }

    #[test]
    fn every_state_appears() {
        let sg = derive(&benchmarks::nouse(), &DeriveOptions::default()).unwrap();
        let dot = to_dot(&sg);
        for s in 0..sg.state_count() {
            assert!(dot.contains(&format!("s{s} [")), "missing state {s}");
        }
    }
}
