//! Deriving a state graph from an STG.

use std::collections::HashMap;

use modsyn_petri::Marking;
use modsyn_stg::Stg;

use crate::{EdgeLabel, SgError, SignalMeta, StateGraph};

/// Limits and policies for [`derive()`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeriveOptions {
    /// Maximum number of states before aborting with
    /// [`SgError::StateBudgetExceeded`].
    pub max_states: usize,
}

impl Default for DeriveOptions {
    fn default() -> Self {
        DeriveOptions {
            max_states: 500_000,
        }
    }
}

/// Exhaustively generates the state graph of `stg` (paper Section 2),
/// tracking the consistent state assignment along every firing.
///
/// Initial signal values are taken from
/// [`Stg::infer_initial_values`].
/// Dummy STG transitions become ε edges.
///
/// # Errors
///
/// * [`SgError::Inconsistent`] if some firing contradicts the current code
///   (e.g. `a+` fires while `a = 1`) or the same marking is reached with two
///   different codes.
/// * [`SgError::TooManySignals`] for more than 64 signals.
/// * [`SgError::StateBudgetExceeded`] / [`SgError::Stg`] for blow-ups and
///   malformed nets.
///
/// [`derive()`] wrapped in an `sg.derive` observability span recording the
/// resulting state and edge counts. With a disabled tracer this is exactly
/// [`derive()`].
pub fn derive_traced(
    stg: &Stg,
    options: &DeriveOptions,
    tracer: &modsyn_obs::Tracer,
) -> Result<StateGraph, SgError> {
    if !tracer.is_enabled() {
        return derive(stg, options);
    }
    let _span = tracer.span("sg.derive");
    tracer.gauge("signals", stg.signal_ids().count() as f64);
    let result = derive(stg, options);
    match &result {
        Ok(graph) => {
            tracer.gauge("states", graph.state_count() as f64);
            tracer.gauge("edges", graph.edge_count() as f64);
        }
        Err(e) => tracer.note("error", &e.to_string()),
    }
    result
}

pub fn derive(stg: &Stg, options: &DeriveOptions) -> Result<StateGraph, SgError> {
    let signals: Vec<SignalMeta> = stg
        .signal_ids()
        .map(|s| SignalMeta {
            name: stg.signal(s).name().to_string(),
            kind: stg.signal(s).kind(),
        })
        .collect();
    let mut graph = StateGraph::new(signals)?;

    let initial_values = stg.infer_initial_values()?;
    let mut initial_code = 0u64;
    for (i, &v) in initial_values.iter().enumerate() {
        if v {
            initial_code |= 1 << i;
        }
    }

    let net = stg.net();
    let m0 = net.initial_marking();
    let mut index: HashMap<Marking, usize> = HashMap::new();
    let mut markings: Vec<Marking> = Vec::new();

    let s0 = graph.add_state(initial_code);
    graph.set_initial(s0);
    index.insert(m0.clone(), s0);
    markings.push(m0);

    let mut frontier = 0usize;
    while frontier < markings.len() {
        let m = markings[frontier].clone();
        let code = graph.code(frontier);
        for t in m.enabled_transitions(net) {
            let next_marking = m.fire(net, t).expect("enabled transition fires");
            // Work out the next code and the edge label.
            let (label, next_code) = match stg.label(t) {
                None => (EdgeLabel::Epsilon, code),
                Some(l) => {
                    let bit = 1u64 << l.signal.index();
                    let current = code & bit != 0;
                    if current != l.polarity.value_before() {
                        return Err(SgError::Inconsistent {
                            signal: stg.signal(l.signal).name().to_string(),
                            detail: format!(
                                "fires {}{} while its value is {}",
                                stg.signal(l.signal).name(),
                                l.polarity,
                                u8::from(current)
                            ),
                        });
                    }
                    let label = EdgeLabel::Signal {
                        signal: l.signal.index(),
                        polarity: l.polarity,
                    };
                    (label, code ^ bit)
                }
            };
            let to = match index.get(&next_marking) {
                Some(&existing) => {
                    if graph.code(existing) != next_code {
                        return Err(SgError::Inconsistent {
                            signal: "<marking>".to_string(),
                            detail: format!(
                                "marking reached with codes {:b} and {:b}",
                                graph.code(existing),
                                next_code
                            ),
                        });
                    }
                    existing
                }
                None => {
                    if markings.len() >= options.max_states {
                        return Err(SgError::StateBudgetExceeded {
                            budget: options.max_states,
                        });
                    }
                    let s = graph.add_state(next_code);
                    index.insert(next_marking.clone(), s);
                    markings.push(next_marking);
                    s
                }
            };
            graph.add_edge(frontier, to, label);
        }
        frontier += 1;
    }

    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_stg::{benchmarks, parse_g};

    #[test]
    fn handshake_codes_are_consistent() {
        let stg = parse_g(
            ".model hs\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        assert_eq!(sg.state_count(), 4);
        // Codes visited: 00 -> 01 (a+) -> 11 (b+) -> 10 (a-) -> 00.
        let mut codes: Vec<u64> = (0..4).map(|s| sg.code(s)).collect();
        codes.sort_unstable();
        assert_eq!(codes, vec![0b00, 0b01, 0b10, 0b11]);
    }

    #[test]
    fn inconsistent_stg_is_rejected() {
        // a+ followed by a+ again.
        let stg = parse_g(
            ".model bad\n.inputs a\n.graph\na+ a+/2\na+/2 a-\na- a-/2\na-/2 a+\n.marking { <a-/2,a+> }\n.end\n",
        )
        .unwrap();
        assert!(matches!(
            derive(&stg, &DeriveOptions::default()),
            Err(SgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn state_budget_is_enforced() {
        let stg = benchmarks::mr0();
        assert!(matches!(
            derive(&stg, &DeriveOptions { max_states: 10 }),
            Err(SgError::StateBudgetExceeded { budget: 10 })
        ));
    }

    #[test]
    fn benchmark_state_counts_match_reachability() {
        for (name, stg) in benchmarks::all() {
            let sg =
                derive(&stg, &DeriveOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
            let reach = stg
                .net()
                .reachability(&modsyn_petri::ReachabilityOptions::default())
                .unwrap();
            assert_eq!(sg.state_count(), reach.markings.len(), "{name}");
            assert_eq!(sg.edge_count(), reach.edges.len(), "{name}");
        }
    }

    #[test]
    fn derive_traced_records_graph_size() {
        let stg = benchmarks::vbe_ex1();
        let tracer = modsyn_obs::Tracer::enabled();
        let sg = derive_traced(&stg, &DeriveOptions::default(), &tracer).unwrap();
        let report = tracer.report();
        let spans = report.spans_with_prefix("sg.derive");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].gauge("states"), Some(sg.state_count() as f64));
        assert_eq!(spans[0].gauge("edges"), Some(sg.edge_count() as f64));
    }

    #[test]
    fn dummies_become_epsilon_edges() {
        let stg = parse_g(
            ".model d\n.inputs a\n.dummy e\n.graph\na+ e\ne a-\na- a+\n.marking { <a-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        assert!(sg.edges().iter().any(|e| e.label == EdgeLabel::Epsilon));
    }
}
