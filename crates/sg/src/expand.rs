//! State-signal insertion by state splitting.
//!
//! Once the SAT layer has assigned each state a value from
//! `{0, 1, Up, Down}` for every new state signal, the state graph is
//! *expanded*: excited states split into before/after copies joined by the
//! state signal's own transition, realising the assignment as concrete
//! circuit behaviour (paper Sections 3.3 and 3.5, Figure 3).

use modsyn_stg::{Polarity, SignalKind};

use crate::{EdgeLabel, SgError, SignalMeta, StateGraph};

/// The four-valued state-variable domain of the SAT-CSC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quat {
    /// Stable low.
    Zero,
    /// Stable high.
    One,
    /// Excited to rise (value 0, about to become 1).
    Up,
    /// Excited to fall (value 1, about to become 0).
    Down,
}

impl Quat {
    /// The binary value contributed to the state code.
    pub fn bit(self) -> bool {
        matches!(self, Quat::One | Quat::Down)
    }

    /// Whether the state signal is in transition.
    pub fn is_excited(self) -> bool {
        matches!(self, Quat::Up | Quat::Down)
    }
}

impl std::fmt::Display for Quat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Quat::Zero => "0",
            Quat::One => "1",
            Quat::Up => "Up",
            Quat::Down => "Down",
        })
    }
}

/// A 4-valued assignment for one new state signal over every state of a
/// state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSignalAssignment {
    /// Name of the new signal (e.g. `csc0`).
    pub name: String,
    /// One value per state, indexed by state id.
    pub values: Vec<Quat>,
}

/// Expands `graph` with the given state signals, splitting excited states.
///
/// Assignments are indexed by the states of the *input* graph; when several
/// signals are inserted, later signals' values carry over to the split
/// copies of earlier ones (concurrent insertion).
///
/// # Errors
///
/// Returns [`SgError::Inconsistent`] if an assignment violates the
/// consistency rules along some edge (e.g. value `0` jumping to `1` with no
/// excited region in between — the paper's Figure 3(j) cases), and
/// [`SgError::TooManySignals`] if the expansion exceeds 64 signals.
pub fn insert_state_signals(
    graph: &StateGraph,
    assignments: &[StateSignalAssignment],
) -> Result<StateGraph, SgError> {
    let mut current = graph.clone();
    // Values of the signals still to insert, re-indexed as states split.
    let mut pending: Vec<StateSignalAssignment> = assignments.to_vec();

    while !pending.is_empty() {
        let assignment = pending.remove(0);
        let (next, origin) = insert_one(&current, &assignment)?;
        for later in &mut pending {
            later.values = origin.iter().map(|&o| later.values[o]).collect();
        }
        current = next;
    }
    Ok(current)
}

/// Inserts one state signal; returns the new graph and, per new state, the
/// index of the state it was copied from.
fn insert_one(
    graph: &StateGraph,
    assignment: &StateSignalAssignment,
) -> Result<(StateGraph, Vec<usize>), SgError> {
    assert_eq!(
        assignment.values.len(),
        graph.state_count(),
        "assignment must cover every state"
    );
    let mut signals = graph.signals().to_vec();
    let new_idx = signals.len();
    signals.push(SignalMeta {
        name: assignment.name.clone(),
        kind: SignalKind::Internal,
    });
    let mut out = StateGraph::new(signals)?;
    let bit = 1u64 << new_idx;

    // Copies per original state: `lo` (signal = 0), `hi` (signal = 1).
    let mut lo: Vec<Option<usize>> = vec![None; graph.state_count()];
    let mut hi: Vec<Option<usize>> = vec![None; graph.state_count()];
    let mut origin: Vec<usize> = Vec::new();

    for s in 0..graph.state_count() {
        let base = graph.code(s);
        match assignment.values[s] {
            Quat::Zero => {
                lo[s] = Some(out.add_state(base));
                origin.push(s);
            }
            Quat::One => {
                hi[s] = Some(out.add_state(base | bit));
                origin.push(s);
            }
            Quat::Up | Quat::Down => {
                let l = out.add_state(base);
                origin.push(s);
                let h = out.add_state(base | bit);
                origin.push(s);
                lo[s] = Some(l);
                hi[s] = Some(h);
                if assignment.values[s] == Quat::Up {
                    out.add_edge(
                        l,
                        h,
                        EdgeLabel::Signal {
                            signal: new_idx,
                            polarity: Polarity::Rise,
                        },
                    );
                } else {
                    out.add_edge(
                        h,
                        l,
                        EdgeLabel::Signal {
                            signal: new_idx,
                            polarity: Polarity::Fall,
                        },
                    );
                }
            }
        }
    }

    let bad = |from: usize, to: usize| -> SgError {
        SgError::Inconsistent {
            signal: assignment.name.clone(),
            detail: format!(
                "assignment {} -> {} along edge {from} -> {to} is not realisable",
                assignment.values[from], assignment.values[to]
            ),
        }
    };

    for e in graph.edges() {
        use Quat::{Down, One, Up, Zero};
        let (vf, vt) = (assignment.values[e.from], assignment.values[e.to]);
        let pick = |side: &Vec<Option<usize>>, s: usize| side[s].expect("copy exists");
        match (vf, vt) {
            (Zero, Zero) | (Zero, Up) => {
                out.add_edge(pick(&lo, e.from), pick(&lo, e.to), e.label);
            }
            (One, One) | (One, Down) => {
                out.add_edge(pick(&hi, e.from), pick(&hi, e.to), e.label);
            }
            (Up, Up) | (Down, Down) => {
                out.add_edge(pick(&lo, e.from), pick(&lo, e.to), e.label);
                out.add_edge(pick(&hi, e.from), pick(&hi, e.to), e.label);
            }
            (Up, One) => {
                out.add_edge(pick(&hi, e.from), pick(&hi, e.to), e.label);
            }
            (Down, Zero) => {
                out.add_edge(pick(&lo, e.from), pick(&lo, e.to), e.label);
            }
            _ => return Err(bad(e.from, e.to)),
        }
    }

    let init = graph.initial();
    let init_copy = match assignment.values[init] {
        Quat::Zero | Quat::Up => lo[init].expect("initial copy exists"),
        Quat::One | Quat::Down => hi[init].expect("initial copy exists"),
    };
    out.set_initial(init_copy);
    Ok((out, origin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive, DeriveOptions};
    use modsyn_stg::parse_g;

    fn double_pulse() -> StateGraph {
        let stg = parse_g(
            ".model dp\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ b-\nb- a-\na- b+/2\nb+/2 b-/2\nb-/2 a+\n.marking { <b-/2,a+> }\n.end\n",
        )
        .unwrap();
        derive(&stg, &DeriveOptions::default()).unwrap()
    }

    /// Find the hand-solvable assignment for the double-pulse example:
    /// raise `n` during the first half, lower it during the second.
    fn resolving_assignment(sg: &StateGraph) -> StateSignalAssignment {
        // States in firing order from initial: s0 (00) -a+-> s1 (01,a=1)
        // -b+-> s2 (11) -b--> s3 (01) -a--> s4 (00) -b+-> s5 (10) -b--> s0.
        // Wait: bit order is a=bit0, b=bit1. Choose: n rises across the
        // first b pulse, falls across the second.
        let mut values = vec![Quat::Zero; sg.state_count()];
        // Walk the cycle from the initial state.
        let mut order = vec![sg.initial()];
        let mut cur = sg.initial();
        loop {
            let next = sg.out_edges(cur).next().expect("cycle").to;
            if next == sg.initial() {
                break;
            }
            order.push(next);
            cur = next;
        }
        assert_eq!(order.len(), 6);
        // order: s0, a+, b+, b-, a-, b+2 (then b-2 closes the cycle).
        // Conflicting states (after a+ vs after first b-, and initial vs
        // after a-) must take *stable, opposite* values; the excited
        // regions sit on the non-conflicting pulse states.
        values[order[0]] = Quat::Zero;
        values[order[1]] = Quat::Zero;
        values[order[2]] = Quat::Up; // n+ fires across the first b-
        values[order[3]] = Quat::One;
        values[order[4]] = Quat::One;
        values[order[5]] = Quat::Down; // n- fires across the second b-
        StateSignalAssignment {
            name: "csc0".into(),
            values,
        }
    }

    #[test]
    fn expansion_splits_excited_states() {
        let sg = double_pulse();
        let assignment = resolving_assignment(&sg);
        let excited = assignment.values.iter().filter(|v| v.is_excited()).count();
        let expanded = insert_state_signals(&sg, &[assignment]).unwrap();
        assert_eq!(expanded.state_count(), sg.state_count() + excited);
        assert_eq!(expanded.signals().len(), 3);
        assert_eq!(expanded.signals()[2].name, "csc0");
        assert_eq!(expanded.signals()[2].kind, SignalKind::Internal);
    }

    #[test]
    fn expansion_resolves_the_conflict() {
        let sg = double_pulse();
        assert!(!sg.csc_analysis().satisfies_csc());
        let expanded = insert_state_signals(&sg, &[resolving_assignment(&sg)]).unwrap();
        let csc = expanded.csc_analysis();
        assert!(csc.satisfies_csc(), "pairs left: {:?}", csc.csc_pairs);
    }

    #[test]
    fn expanded_graph_stays_consistent() {
        let sg = double_pulse();
        let expanded = insert_state_signals(&sg, &[resolving_assignment(&sg)]).unwrap();
        // Every edge flips exactly the labelled signal's bit.
        for e in expanded.edges() {
            let EdgeLabel::Signal { signal, polarity } = e.label else {
                panic!("no epsilon edges expected");
            };
            let before = expanded.value(e.from, signal);
            let after = expanded.value(e.to, signal);
            assert_eq!(before, polarity.value_before(), "edge {e:?}");
            assert_eq!(after, polarity.value_after(), "edge {e:?}");
            let others = expanded.code(e.from) ^ expanded.code(e.to);
            assert_eq!(others, 1 << signal, "only one bit changes");
        }
    }

    #[test]
    fn invalid_assignment_is_rejected() {
        let sg = double_pulse();
        // Value jumps 0 -> 1 with no excitation: Figure 3(j).
        let mut values = vec![Quat::Zero; sg.state_count()];
        let first_succ = sg.out_edges(sg.initial()).next().unwrap().to;
        values[first_succ] = Quat::One;
        let a = StateSignalAssignment {
            name: "bad".into(),
            values,
        };
        assert!(matches!(
            insert_state_signals(&sg, &[a]),
            Err(SgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn all_stable_assignment_is_identity_sized() {
        let sg = double_pulse();
        let a = StateSignalAssignment {
            name: "n".into(),
            values: vec![Quat::Zero; sg.state_count()],
        };
        let expanded = insert_state_signals(&sg, &[a]).unwrap();
        assert_eq!(expanded.state_count(), sg.state_count());
        assert_eq!(expanded.edge_count(), sg.edge_count());
    }
}
