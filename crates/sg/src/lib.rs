//! State graphs for STG-based asynchronous circuit synthesis.
//!
//! A *state graph* is the finite automaton obtained by exhaustively firing
//! an STG's token game; every state carries a binary code over the STG's
//! signals (the consistent state assignment). This crate implements the
//! machinery the paper's Section 2 and 3 rely on:
//!
//! * [`StateGraph`] — states, codes and labelled edges ([`derive()`] builds
//!   one from an [`modsyn_stg::Stg`], enforcing consistency),
//! * [`CscAnalysis`] — USC/CSC conflict detection, `Max_csc` and the
//!   state-signal lower bound,
//! * [`StateGraph::hide_signals`] — ε-labelling and state merging, the
//!   modular-state-graph construction of Section 3.3,
//! * [`insert_state_signals`] — state splitting that realises a 4-valued
//!   state-signal assignment ({0, 1, Up, Down}) as real transitions,
//! * semi-modularity checking.
//!
//! # Example
//!
//! ```
//! use modsyn_sg::{derive, DeriveOptions};
//! use modsyn_stg::benchmarks;
//!
//! # fn main() -> Result<(), modsyn_sg::SgError> {
//! let stg = benchmarks::vbe_ex1();
//! let sg = derive(&stg, &DeriveOptions::default())?;
//! assert_eq!(sg.state_count(), 6);
//! let csc = sg.csc_analysis();
//! assert!(!csc.csc_pairs.is_empty(), "vbe-ex1 has a CSC conflict");
//! # Ok(())
//! # }
//! ```

mod bisim;
mod csc;
mod derive;
mod dot;
mod error;
mod expand;
mod graph;
mod quotient;
mod semimod;

pub use bisim::bisimilar;
pub use csc::CscAnalysis;
pub use derive::{derive, derive_traced, DeriveOptions};
pub use dot::to_dot;
pub use error::SgError;
pub use expand::{insert_state_signals, Quat, StateSignalAssignment};
pub use graph::{Edge, EdgeLabel, SignalMeta, StateGraph};
pub use quotient::Quotient;
pub use semimod::SemiModularityReport;
