//! Semi-modularity checking.
//!
//! A non-input signal excited in a state must stay excited (or have fired)
//! after any other transition fires — otherwise the circuit contains a
//! potential hazard (the excitation was withdrawn). Input signals are exempt:
//! the environment may withdraw them through free choice.

use crate::{EdgeLabel, StateGraph};

/// One semi-modularity violation: `signal` was excited in `state` but is no
/// longer excited (and did not fire) after taking `via` to `successor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemiModularityViolation {
    /// The state where the excitation was observed.
    pub state: usize,
    /// The excited signal that got disabled.
    pub signal: usize,
    /// The state reached by the disabling transition.
    pub successor: usize,
    /// The signal whose firing disabled it.
    pub via: usize,
}

/// Outcome of [`StateGraph::semi_modularity`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SemiModularityReport {
    /// All violations found.
    pub violations: Vec<SemiModularityViolation>,
}

impl SemiModularityReport {
    /// Whether the graph is semi-modular with respect to non-input signals.
    pub fn is_semi_modular(&self) -> bool {
        self.violations.is_empty()
    }
}

impl StateGraph {
    /// Checks semi-modularity of every non-input signal.
    pub fn semi_modularity(&self) -> SemiModularityReport {
        let mut report = SemiModularityReport::default();
        for state in 0..self.state_count() {
            for signal in 0..self.signals().len() {
                if !self.signals()[signal].kind.is_non_input() {
                    continue;
                }
                let Some(polarity) = self.excited(state, signal) else {
                    continue;
                };
                for e in self.out_edges(state) {
                    let via = match e.label {
                        EdgeLabel::Signal { signal: s, .. } => s,
                        EdgeLabel::Epsilon => continue,
                    };
                    if via == signal {
                        continue; // the excitation fired
                    }
                    if self.excited(e.to, signal) != Some(polarity) {
                        report.violations.push(SemiModularityViolation {
                            state,
                            signal,
                            successor: e.to,
                            via,
                        });
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use crate::{derive, DeriveOptions};
    use modsyn_stg::{benchmarks, parse_g};

    #[test]
    fn benchmarks_are_semi_modular() {
        for (name, stg) in benchmarks::all() {
            let sg =
                derive(&stg, &DeriveOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = sg.semi_modularity();
            assert!(
                report.is_semi_modular(),
                "{name}: {:?}",
                &report.violations[..report.violations.len().min(3)]
            );
        }
    }

    #[test]
    fn output_choice_violates_semi_modularity() {
        // A free choice between two OUTPUT transitions: firing one disables
        // the other.
        let stg = parse_g(
            ".model oc\n.inputs a\n.outputs x y\n.graph\np0 x+ y+\nx+ x-\nx- pm\ny+ y-\ny- pm\npm a+\na+ a-\na- p0\n.marking { p0 }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let report = sg.semi_modularity();
        assert!(!report.is_semi_modular());
        // Both directions are reported: x disabled by y and vice versa.
        assert!(report.violations.len() >= 2);
    }

    #[test]
    fn input_choice_is_allowed() {
        let stg = parse_g(
            ".model ic\n.inputs a b\n.outputs z\n.graph\np0 a+ b+\na+ z+\nb+ z+/2\nz+ a-\nz+/2 b-\na- z-\nb- z-/2\nz- p0\nz-/2 p0\n.marking { p0 }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        assert!(sg.semi_modularity().is_semi_modular());
    }
}
