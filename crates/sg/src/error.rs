//! Error type for state-graph operations.

use std::error::Error;
use std::fmt;

/// Errors raised while deriving or transforming state graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgError {
    /// The STG violates consistent state assignment: a transition fired
    /// against the current value of its signal.
    Inconsistent {
        /// Name of the offending signal.
        signal: String,
        /// Textual description of the state where it happened.
        detail: String,
    },
    /// More signals than the 64 the packed state code supports.
    TooManySignals {
        /// Requested signal count.
        requested: usize,
    },
    /// The underlying STG failed validation or reachability.
    Stg(modsyn_stg::StgError),
    /// State enumeration exceeded the configured budget.
    StateBudgetExceeded {
        /// The exceeded budget.
        budget: usize,
    },
}

impl fmt::Display for SgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgError::Inconsistent { signal, detail } => {
                write!(f, "inconsistent STG: signal {signal:?} {detail}")
            }
            SgError::TooManySignals { requested } => {
                write!(
                    f,
                    "too many signals: {requested} exceeds the 64-bit code limit"
                )
            }
            SgError::Stg(e) => write!(f, "stg error: {e}"),
            SgError::StateBudgetExceeded { budget } => {
                write!(f, "state enumeration exceeded budget of {budget}")
            }
        }
    }
}

impl Error for SgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SgError::Stg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<modsyn_stg::StgError> for SgError {
    fn from(e: modsyn_stg::StgError) -> Self {
        SgError::Stg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SgError::TooManySignals { requested: 99 };
        assert!(e.to_string().contains("99"));
        let e = SgError::Inconsistent {
            signal: "a".into(),
            detail: "fired a+ at 1".into(),
        };
        assert!(e.to_string().contains('a'));
    }

    #[test]
    fn stg_errors_chain() {
        let e: SgError = modsyn_stg::StgError::NoTransitions { signal: "x".into() }.into();
        assert!(Error::source(&e).is_some());
    }
}
