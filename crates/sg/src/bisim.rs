//! Bisimulation checking between state graphs.
//!
//! Used to verify the central soundness property of state-signal insertion:
//! expanding a graph with new signals and then hiding those signals again
//! must leave the observable behaviour unchanged — the quotient is
//! bisimilar to the original graph.

use std::collections::HashMap;

use modsyn_stg::Polarity;

use crate::{EdgeLabel, StateGraph};

/// Whether the two rooted graphs are strongly bisimilar, comparing edges by
/// **signal name** and polarity (indices may differ between the graphs);
/// ε edges must match ε edges.
///
/// Runs classic partition refinement on the disjoint union of the graphs
/// and checks that the two initial states end in the same block.
///
/// ```
/// use modsyn_sg::{bisimilar, derive, DeriveOptions};
/// use modsyn_stg::benchmarks;
/// # fn main() -> Result<(), modsyn_sg::SgError> {
/// let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default())?;
/// assert!(bisimilar(&sg, &sg));
/// # Ok(())
/// # }
/// ```
pub fn bisimilar(a: &StateGraph, b: &StateGraph) -> bool {
    // Unified label space over names.
    let mut label_ids: HashMap<(String, Option<Polarity>), usize> = HashMap::new();
    let mut label_of = |graph: &StateGraph, label: EdgeLabel| -> usize {
        let key = match label {
            EdgeLabel::Epsilon => ("\u{3b5}".to_string(), None),
            EdgeLabel::Signal { signal, polarity } => {
                (graph.signals()[signal].name.clone(), Some(polarity))
            }
        };
        let next = label_ids.len();
        *label_ids.entry(key).or_insert(next)
    };

    // Disjoint union: states of `a` are 0..na, of `b` are na..na+nb.
    let na = a.state_count();
    let total = na + b.state_count();
    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); total]; // (label, to)
    for e in a.edges() {
        let l = label_of(a, e.label);
        edges[e.from].push((l, e.to));
    }
    for e in b.edges() {
        let l = label_of(b, e.label);
        edges[na + e.from].push((l, na + e.to));
    }

    // Partition refinement: iteratively split blocks by their label→block
    // transition signatures.
    let mut block: Vec<usize> = vec![0; total];
    let mut block_count = 1usize;
    loop {
        let mut signatures: HashMap<(usize, Vec<(usize, usize)>), usize> = HashMap::new();
        let mut next_block: Vec<usize> = vec![0; total];
        for s in 0..total {
            let mut sig: Vec<(usize, usize)> =
                edges[s].iter().map(|&(l, t)| (l, block[t])).collect();
            sig.sort_unstable();
            sig.dedup();
            let key = (block[s], sig);
            let fresh = signatures.len();
            next_block[s] = *signatures.entry(key).or_insert(fresh);
        }
        let next_count = signatures.len();
        if next_count == block_count {
            block = next_block;
            break;
        }
        block = next_block;
        block_count = next_count;
    }

    block[a.initial()] == block[na + b.initial()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive, DeriveOptions, SignalMeta};
    use modsyn_stg::{benchmarks, SignalKind};

    fn meta(name: &str) -> SignalMeta {
        SignalMeta {
            name: name.into(),
            kind: SignalKind::Output,
        }
    }

    #[test]
    fn identical_graphs_are_bisimilar() {
        for name in ["vbe-ex1", "nouse", "nak-pa"] {
            let sg = derive(
                &benchmarks::by_name(name).unwrap(),
                &DeriveOptions::default(),
            )
            .unwrap();
            assert!(bisimilar(&sg, &sg), "{name}");
        }
    }

    #[test]
    fn unrolled_cycle_is_bisimilar_to_the_original() {
        // A 2-state toggle vs its 4-state unrolling.
        let lab = |signal, polarity| EdgeLabel::Signal { signal, polarity };
        let mut small = StateGraph::new(vec![meta("x")]).unwrap();
        let s0 = small.add_state(0);
        let s1 = small.add_state(1);
        small.add_edge(s0, s1, lab(0, Polarity::Rise));
        small.add_edge(s1, s0, lab(0, Polarity::Fall));

        let mut big = StateGraph::new(vec![meta("x")]).unwrap();
        let t: Vec<usize> = (0..4).map(|i| big.add_state(i as u64 % 2)).collect();
        big.add_edge(t[0], t[1], lab(0, Polarity::Rise));
        big.add_edge(t[1], t[2], lab(0, Polarity::Fall));
        big.add_edge(t[2], t[3], lab(0, Polarity::Rise));
        big.add_edge(t[3], t[0], lab(0, Polarity::Fall));

        assert!(bisimilar(&small, &big));
    }

    #[test]
    fn different_protocols_are_not_bisimilar() {
        let lab = |signal, polarity| EdgeLabel::Signal { signal, polarity };
        let mut a = StateGraph::new(vec![meta("x"), meta("y")]).unwrap();
        let a0 = a.add_state(0b00);
        let a1 = a.add_state(0b01);
        a.add_edge(a0, a1, lab(0, Polarity::Rise));
        a.add_edge(a1, a0, lab(0, Polarity::Fall));

        // Same shape but a different signal name on the edges.
        let mut b = StateGraph::new(vec![meta("x"), meta("y")]).unwrap();
        let b0 = b.add_state(0b00);
        let b1 = b.add_state(0b10);
        b.add_edge(b0, b1, lab(1, Polarity::Rise));
        b.add_edge(b1, b0, lab(1, Polarity::Fall));

        assert!(!bisimilar(&a, &b));
    }

    #[test]
    fn choice_vs_determinised_choice_is_distinguished() {
        // a graph that chooses x+ or y+ from the start vs one that first
        // commits silently — classic bisimulation counterexample.
        let lab = |signal, polarity| EdgeLabel::Signal { signal, polarity };
        let mut a = StateGraph::new(vec![meta("x"), meta("y")]).unwrap();
        let a0 = a.add_state(0);
        let ax = a.add_state(0b01);
        let ay = a.add_state(0b10);
        a.add_edge(a0, ax, lab(0, Polarity::Rise));
        a.add_edge(a0, ay, lab(1, Polarity::Rise));
        a.add_edge(ax, a0, lab(0, Polarity::Fall));
        a.add_edge(ay, a0, lab(1, Polarity::Fall));

        let mut b = StateGraph::new(vec![meta("x"), meta("y")]).unwrap();
        let b0 = b.add_state(0);
        let bx = b.add_state(0b01);
        b.add_edge(b0, bx, lab(0, Polarity::Rise));
        b.add_edge(bx, b0, lab(0, Polarity::Fall));

        assert!(!bisimilar(&a, &b));
    }
}
