//! A tiny deterministic PRNG for seeded fault decisions.
//!
//! SplitMix64, the same generator `modsyn-check` uses for test-case
//! generation: full-period, statistically solid, and — crucially for chaos
//! certification — the same seed produces the same injection sequence on
//! every platform and every run, so a failing plan printed in CI
//! reproduces locally with no further state.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        // Multiply-shift mapping; bias is < 2^-53 for the tiny bounds here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A bool that is true with probability `num/denom`.
    pub fn chance(&mut self, num: usize, denom: usize) -> bool {
        self.below(denom) < num
    }
}

/// FNV-1a over a byte string — used to give every site its own
/// deterministic sub-stream of the plan seed.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_is_deterministic_and_in_range() {
        let mut r = SplitMix64::new(7);
        let hits = (0..1000).filter(|_| r.chance(1, 4)).count();
        assert!(hits > 150 && hits < 350, "{hits}");
    }

    #[test]
    fn fnv_distinguishes_sites() {
        assert_ne!(fnv1a64(b"sat.abort"), fnv1a64(b"pool.run"));
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
