//! Fault plans and the armed handle the instrumented layers probe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::rng::{fnv1a64, SplitMix64};

/// Well-known injection sites. The string is the contract between a
/// [`FaultRule`] and the layer that probes it; layers may define further
/// sites, but every site wired into the workspace is listed here so plans
/// and docs have one vocabulary.
pub mod site {
    /// SAT search loop: force an early `Outcome::Aborted`.
    pub const SAT_ABORT: &str = "sat.abort";
    /// SAT search loop: spurious conflict storm — the solver behaves as if
    /// it burned through its whole backtrack budget (`BacktrackLimit`).
    pub const SAT_CONFLICT_STORM: &str = "sat.conflict-storm";
    /// Worker pool: the job panics as the worker picks it up, before the
    /// caller's closure runs.
    pub const POOL_ENQUEUE: &str = "pool.enqueue";
    /// Worker pool: the job panics after the caller's closure ran,
    /// discarding its result.
    pub const POOL_RUN: &str = "pool.run";
    /// Worker pool: the result channel is dropped before the send, so the
    /// handle observes a vanished job.
    pub const POOL_DRAIN: &str = "pool.drain";
    /// Worker pool: the worker stalls for the rule's delay before running
    /// the job (queue stall).
    pub const POOL_STALL: &str = "pool.stall";
    /// Service accept loop: the freshly accepted connection is dropped as
    /// if `accept(2)` had failed.
    pub const SVC_ACCEPT: &str = "svc.accept";
    /// Service handler: the connection is dropped before the request is
    /// read (premature EOF towards the client).
    pub const SVC_READ_TORN: &str = "svc.read-torn";
    /// Service handler: only a prefix of the response is written before
    /// the connection drops (torn write).
    pub const SVC_WRITE_TORN: &str = "svc.write-torn";
    /// Service handler: the response is delayed by the rule's delay
    /// (slow peer).
    pub const SVC_SLOW_PEER: &str = "svc.slow-peer";
    /// Response cache: the targeted shard is wiped before an insert
    /// (eviction storm).
    pub const CACHE_EVICT_STORM: &str = "cache.evict-storm";
    /// Durable store journal: only half of the frame reaches the file
    /// before the "crash" (torn append). Recovery must truncate the tail.
    pub const STORE_WAL_TORN_WRITE: &str = "store.wal-torn-write";
    /// Durable store recovery: the snapshot generation under inspection is
    /// treated as corrupt, forcing the previous-generation (or cold)
    /// fallback path.
    pub const STORE_SNAPSHOT_CORRUPT: &str = "store.snapshot-corrupt";
    /// Replica fleet supervisor: SIGKILL one replica, as if the OOM killer
    /// got it mid-traffic.
    pub const FLEET_REPLICA_KILL: &str = "fleet.replica-kill";
}

/// One site's injection rule inside a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The site this rule fires at (see [`site`]).
    pub site: String,
    /// Let the first `skip` eligible probes pass untouched.
    pub skip: u64,
    /// Inject at most this many times (`u64::MAX` = unlimited).
    pub max_hits: u64,
    /// Probability of injecting on an eligible probe, as `num/denom`.
    pub num: u32,
    /// See [`FaultRule::num`].
    pub denom: u32,
    /// Delay carried by stall-style sites (`pool.stall`, `svc.slow-peer`);
    /// ignored by the boolean sites.
    pub delay: Duration,
}

impl FaultRule {
    /// A rule that always fires at `site`, every eligible probe, forever.
    pub fn at(site: &str) -> FaultRule {
        FaultRule {
            site: site.to_string(),
            skip: 0,
            max_hits: u64::MAX,
            num: 1,
            denom: 1,
            delay: Duration::from_millis(25),
        }
    }

    /// Let the first `n` probes pass before becoming eligible.
    #[must_use]
    pub fn skip(mut self, n: u64) -> FaultRule {
        self.skip = n;
        self
    }

    /// Inject at most `n` times, then fall silent (faults "clear").
    #[must_use]
    pub fn times(mut self, n: u64) -> FaultRule {
        self.max_hits = n;
        self
    }

    /// Fire with probability `num/denom` per eligible probe.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[must_use]
    pub fn chance(mut self, num: u32, denom: u32) -> FaultRule {
        assert!(denom > 0, "chance denominator must be non-zero");
        self.num = num;
        self.denom = denom;
        self
    }

    /// Delay for stall-style sites.
    #[must_use]
    pub fn delay(mut self, delay: Duration) -> FaultRule {
        self.delay = delay;
        self
    }
}

/// A named, seeded description of which faults to inject where.
///
/// A plan is inert data; [`FaultPlan::arm`] turns it into a live
/// [`Faults`] handle. Equal plans (same name, seed and rules) arm into
/// handles that make identical injection decisions given identical probe
/// sequences — chaos runs are reproducible from the plan alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Plan name, carried into reports and logs.
    pub name: String,
    /// Seed for every rule's decision stream.
    pub seed: u64,
    /// The injection rules.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (arms into a handle that never injects).
    pub fn new(name: &str, seed: u64) -> FaultPlan {
        FaultPlan {
            name: name.to_string(),
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Arms the plan: the returned handle (and its clones) injects.
    pub fn arm(&self) -> Faults {
        let rules = self
            .rules
            .iter()
            .enumerate()
            .map(|(i, rule)| RuleState {
                rule: rule.clone(),
                state: Mutex::new(Decider {
                    rng: SplitMix64::new(
                        self.seed ^ fnv1a64(rule.site.as_bytes()) ^ (i as u64) << 32,
                    ),
                    probes: 0,
                    hits: 0,
                }),
            })
            .collect();
        Faults {
            inner: Some(Arc::new(Armed {
                name: self.name.clone(),
                enabled: AtomicBool::new(true),
                rules,
                injected: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Parses a compact plan spec: comma-separated rules of the form
    /// `site[*max][+skip][@num/denom][~delay_ms]`, e.g.
    /// `sat.abort*2,pool.run@1/4,svc.slow-peer~50`. Used by the `chaosmat`
    /// matrix and the `modsynd --faults` flag.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed rule.
    pub fn parse(name: &str, spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(name, seed);
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let mut rest = part;
            let site_end = rest.find(['*', '+', '@', '~']).unwrap_or(rest.len());
            let site = &rest[..site_end];
            if site.is_empty() {
                return Err(format!("rule {part:?}: empty site"));
            }
            let mut rule = FaultRule::at(site);
            rest = &rest[site_end..];
            while !rest.is_empty() {
                let (op, tail) = rest.split_at(1);
                let val_end = tail.find(['*', '+', '@', '~']).unwrap_or(tail.len());
                let (value, next) = tail.split_at(val_end);
                match op {
                    "*" => {
                        rule.max_hits = value
                            .parse()
                            .map_err(|_| format!("rule {part:?}: bad max {value:?}"))?;
                    }
                    "+" => {
                        rule.skip = value
                            .parse()
                            .map_err(|_| format!("rule {part:?}: bad skip {value:?}"))?;
                    }
                    "@" => {
                        let (n, d) = value
                            .split_once('/')
                            .ok_or_else(|| format!("rule {part:?}: chance needs num/denom"))?;
                        rule.num = n
                            .parse()
                            .map_err(|_| format!("rule {part:?}: bad num {n:?}"))?;
                        rule.denom = d
                            .parse()
                            .map_err(|_| format!("rule {part:?}: bad denom {d:?}"))?;
                        if rule.denom == 0 {
                            return Err(format!("rule {part:?}: denom must be non-zero"));
                        }
                    }
                    "~" => {
                        let ms: u64 = value
                            .parse()
                            .map_err(|_| format!("rule {part:?}: bad delay {value:?}"))?;
                        rule.delay = Duration::from_millis(ms);
                    }
                    _ => unreachable!("split on known operators"),
                }
                rest = next;
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }
}

/// One injection, as recorded in the armed plan's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The site that fired.
    pub site: String,
    /// 1-based probe count at that site when it fired.
    pub probe: u64,
    /// 1-based hit count at that site (this event included).
    pub hit: u64,
}

struct Decider {
    rng: SplitMix64,
    probes: u64,
    hits: u64,
}

struct RuleState {
    rule: FaultRule,
    state: Mutex<Decider>,
}

struct Armed {
    name: String,
    enabled: AtomicBool,
    rules: Vec<RuleState>,
    injected: AtomicU64,
    log: Mutex<Vec<FaultEvent>>,
}

/// Anything that can decide whether a named site should fail right now.
///
/// [`Faults`] is the standard implementation; the trait exists so tests
/// can substitute scripted hooks without building a plan.
pub trait FaultHook: Send + Sync {
    /// Probes `site`; `true` means inject the site's fault now.
    fn fire(&self, site: &str) -> bool;

    /// Probes a stall-style `site`; `Some(delay)` means stall for `delay`.
    fn stall(&self, site: &str) -> Option<Duration>;
}

/// A cloneable handle to an armed [`FaultPlan`] — or to nothing.
///
/// Mirrors the `CancelToken` idiom: [`Faults::none`] (the `Default`)
/// carries no state, so probing a disarmed handle is a branch on `None`
/// and the instrumented hot paths pay nothing when chaos is off. All
/// clones share the armed plan's counters, so a plan threaded into
/// several layers (solver + pool + service) draws every decision from one
/// deterministic per-site stream.
#[derive(Clone, Default)]
pub struct Faults {
    inner: Option<Arc<Armed>>,
}

impl Faults {
    /// The inert handle: never injects, costs one branch per probe.
    pub fn none() -> Faults {
        Faults { inner: None }
    }

    /// Whether a plan is armed behind this handle.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The armed plan's name, if any.
    pub fn plan_name(&self) -> Option<String> {
        self.inner.as_ref().map(|a| a.name.clone())
    }

    /// Pauses or resumes injection without dropping the plan's counters;
    /// `set_enabled(false)` is how a chaos run "clears" its faults while
    /// keeping the log for assertions.
    pub fn set_enabled(&self, enabled: bool) {
        if let Some(armed) = &self.inner {
            armed.enabled.store(enabled, Ordering::Release);
        }
    }

    /// Total injections across all sites so far.
    pub fn total_injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |a| a.injected.load(Ordering::Acquire))
    }

    /// Injections at one site so far.
    pub fn injected_at(&self, site: &str) -> u64 {
        let Some(armed) = &self.inner else { return 0 };
        armed
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|e| e.site == site)
            .count() as u64
    }

    /// A copy of the injection log, in firing order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |a| {
            a.log.lock().unwrap_or_else(PoisonError::into_inner).clone()
        })
    }

    fn decide(&self, site: &str) -> Option<&RuleState> {
        let armed = self.inner.as_deref()?;
        if !armed.enabled.load(Ordering::Acquire) {
            return None;
        }
        armed.rules.iter().find(|r| r.rule.site == site)
    }

    fn probe(&self, site: &str) -> bool {
        let Some(rule_state) = self.decide(site) else {
            return false;
        };
        let rule = &rule_state.rule;
        let mut decider = rule_state
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        decider.probes += 1;
        if decider.probes <= rule.skip || decider.hits >= rule.max_hits {
            return false;
        }
        // Draw even on certain rules so adding `@1/1` to a plan does not
        // shift the stream of a later probabilistic rule at the same site.
        if !decider.rng.chance(rule.num as usize, rule.denom as usize) {
            return false;
        }
        decider.hits += 1;
        let event = FaultEvent {
            site: rule.site.clone(),
            probe: decider.probes,
            hit: decider.hits,
        };
        drop(decider);
        let armed = self.inner.as_deref().expect("decide returned a rule");
        armed.injected.fetch_add(1, Ordering::AcqRel);
        armed
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
        true
    }
}

impl FaultHook for Faults {
    fn fire(&self, site: &str) -> bool {
        self.probe(site)
    }

    fn stall(&self, site: &str) -> Option<Duration> {
        if !self.probe(site) {
            return None;
        }
        let rule_state = self.decide(site).expect("probe hit implies a rule");
        Some(rule_state.rule.delay)
    }
}

impl std::fmt::Debug for Faults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Faults(none)"),
            Some(a) => f
                .debug_struct("Faults")
                .field("plan", &a.name)
                .field("rules", &a.rules.len())
                .field("injected", &a.injected.load(Ordering::Acquire))
                .finish(),
        }
    }
}

/// Handles compare by identity: clones of one armed handle are equal, two
/// independently armed plans are not, and all disarmed handles are equal —
/// the same contract as `CancelToken`, so options structs holding a
/// `Faults` keep a meaningful `PartialEq`.
impl PartialEq for Faults {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_handle_never_fires() {
        let faults = Faults::none();
        assert!(!faults.is_armed());
        assert!(!faults.fire(site::SAT_ABORT));
        assert!(faults.stall(site::POOL_STALL).is_none());
        assert_eq!(faults.total_injected(), 0);
        assert_eq!(faults, Faults::default());
    }

    #[test]
    fn certain_rule_fires_every_probe_up_to_max() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT).times(3))
            .arm();
        let hits = (0..10).filter(|_| faults.fire(site::SAT_ABORT)).count();
        assert_eq!(hits, 3, "max_hits bounds injections");
        assert_eq!(faults.injected_at(site::SAT_ABORT), 3);
        let events = faults.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].probe, 1);
        assert_eq!(events[2].hit, 3);
    }

    #[test]
    fn skip_lets_early_probes_pass() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::POOL_RUN).skip(2).times(1))
            .arm();
        assert!(!faults.fire(site::POOL_RUN));
        assert!(!faults.fire(site::POOL_RUN));
        assert!(faults.fire(site::POOL_RUN));
        assert!(!faults.fire(site::POOL_RUN), "exhausted after one hit");
    }

    #[test]
    fn same_plan_same_decisions() {
        let plan = FaultPlan::new("t", 99)
            .rule(FaultRule::at(site::POOL_RUN).chance(1, 3))
            .rule(FaultRule::at(site::SAT_ABORT).chance(1, 2));
        let a = plan.arm();
        let b = plan.arm();
        for _ in 0..200 {
            assert_eq!(a.fire(site::POOL_RUN), b.fire(site::POOL_RUN));
            assert_eq!(a.fire(site::SAT_ABORT), b.fire(site::SAT_ABORT));
        }
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let f = FaultPlan::new("t", seed)
                .rule(FaultRule::at(site::POOL_RUN).chance(1, 2))
                .arm();
            (0..64).map(|_| f.fire(site::POOL_RUN)).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn unlisted_site_never_fires() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT))
            .arm();
        assert!(!faults.fire(site::POOL_RUN));
        assert!(faults.fire(site::SAT_ABORT));
    }

    #[test]
    fn set_enabled_pauses_and_resumes() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT))
            .arm();
        assert!(faults.fire(site::SAT_ABORT));
        faults.set_enabled(false);
        assert!(!faults.fire(site::SAT_ABORT), "paused plans do not inject");
        faults.set_enabled(true);
        assert!(faults.fire(site::SAT_ABORT));
        assert_eq!(faults.total_injected(), 2);
    }

    #[test]
    fn stall_returns_the_rule_delay() {
        let faults = FaultPlan::new("t", 1)
            .rule(
                FaultRule::at(site::POOL_STALL)
                    .times(1)
                    .delay(Duration::from_millis(7)),
            )
            .arm();
        assert_eq!(
            faults.stall(site::POOL_STALL),
            Some(Duration::from_millis(7))
        );
        assert_eq!(faults.stall(site::POOL_STALL), None);
    }

    #[test]
    fn clones_share_counters() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT).times(1))
            .arm();
        let clone = faults.clone();
        assert!(clone.fire(site::SAT_ABORT));
        assert!(!faults.fire(site::SAT_ABORT), "hit budget is shared");
        assert_eq!(faults, clone);
    }

    #[test]
    fn parse_round_trips_the_operators() {
        let plan = FaultPlan::parse(
            "mix",
            "sat.abort*2,pool.run+3@1/4,svc.slow-peer~50,cache.evict-storm",
            7,
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].site, "sat.abort");
        assert_eq!(plan.rules[0].max_hits, 2);
        assert_eq!(plan.rules[1].skip, 3);
        assert_eq!(plan.rules[1].num, 1);
        assert_eq!(plan.rules[1].denom, 4);
        assert_eq!(plan.rules[2].delay, Duration::from_millis(50));
        assert_eq!(plan.rules[3].max_hits, u64::MAX);
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        assert!(FaultPlan::parse("t", "*3", 0).is_err());
        assert!(FaultPlan::parse("t", "site@1", 0).is_err());
        assert!(FaultPlan::parse("t", "site@1/0", 0).is_err());
        assert!(FaultPlan::parse("t", "site~ms", 0).is_err());
        assert!(FaultPlan::parse("t", "site*many", 0).is_err());
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Faults>();
    }
}
