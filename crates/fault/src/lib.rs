//! # modsyn-fault — deterministic fault injection for the synthesis stack
//!
//! The paper's headline failure mode is resource exhaustion (the direct
//! method aborts on `mr1` at the SAT backtrack limit), and a serving
//! deployment adds its own: worker panics, torn connections, cache
//! eviction storms. This crate is the *fault plane* the rest of the
//! workspace uses to prove it survives all of them without ever serving
//! a wrong or uncertified answer.
//!
//! Three pieces:
//!
//! - [`FaultPlan`] — inert, named, seeded data describing which
//!   [`site`]s fail, how often, and for how long. Plans parse from a
//!   compact spec (`sat.abort*2,pool.run@1/4`) so the chaos matrix and
//!   the `modsynd --faults` flag share one format.
//! - [`Faults`] — the armed handle layers actually probe, built by
//!   [`FaultPlan::arm`]. It follows the `CancelToken` idiom: the
//!   default handle is `None` inside, so a probe on the nominal path is
//!   a single branch and the instrumented hot loops cost nothing when
//!   chaos is off. Decisions are drawn from per-site SplitMix64 streams
//!   (seed ⊕ FNV-1a(site)), so a plan's injection sequence is a pure
//!   function of the plan — chaos failures printed in CI replay locally.
//! - [`FaultHook`] — the two-method trait (`fire`, `stall`) the
//!   instrumented layers are generic over, so tests can script hooks
//!   without building plans.
//!
//! This crate sits *below* everything else in the workspace graph (it
//! depends on nothing, not even `modsyn-obs`): the solver, pool, service
//! and cache all probe sites, so the fault plane cannot depend on any of
//! them. Layers that own tracers mirror injection counts into their own
//! metrics.

mod plan;
mod rng;

pub use plan::{site, FaultEvent, FaultHook, FaultPlan, FaultRule, Faults};
pub use rng::{fnv1a64, SplitMix64};
