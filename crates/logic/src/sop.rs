//! Named sum-of-products expressions.

use std::fmt;

use crate::{Cover, LogicError};

/// A sum-of-products with human-readable input names, e.g. the logic
/// function of one output signal of a synthesised circuit.
///
/// ```
/// use modsyn_logic::{Cover, Cube, Sop};
/// # fn main() -> Result<(), modsyn_logic::LogicError> {
/// let cover = Cover::from_cubes(2, vec![
///     Cube::from_literals(2, &[(0, true), (1, false)]),
/// ]);
/// let sop = Sop::new(vec!["req".into(), "ack".into()], cover)?;
/// assert_eq!(sop.to_string(), "req & !ack");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    names: Vec<String>,
    cover: Cover,
}

impl Sop {
    /// Wraps a cover with input names.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::UniverseMismatch`] if the name count does not
    /// match the cover's variable count.
    pub fn new(names: Vec<String>, cover: Cover) -> Result<Self, LogicError> {
        if names.len() != cover.num_vars() {
            return Err(LogicError::UniverseMismatch {
                names: names.len(),
                variables: cover.num_vars(),
            });
        }
        Ok(Sop { names, cover })
    }

    /// The underlying cover.
    pub fn cover(&self) -> &Cover {
        &self.cover
    }

    /// The input names, in variable order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Literal count — the paper's two-level area metric.
    pub fn literal_count(&self) -> usize {
        self.cover.literal_count()
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cover.is_empty() {
            return write!(f, "0");
        }
        for (i, cube) in self.cover.cubes().iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            let lits = cube.literals();
            if lits.is_empty() {
                write!(f, "1")?;
                continue;
            }
            for (k, (v, pol)) in lits.iter().enumerate() {
                if k > 0 {
                    write!(f, " & ")?;
                }
                if !pol {
                    write!(f, "!")?;
                }
                write!(f, "{}", self.names[*v])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    #[test]
    fn mismatched_names_are_rejected() {
        let cover = Cover::empty(3);
        let err = Sop::new(vec!["a".into()], cover).unwrap_err();
        assert_eq!(
            err,
            LogicError::UniverseMismatch {
                names: 1,
                variables: 3
            }
        );
    }

    #[test]
    fn display_constant_cases() {
        let zero = Sop::new(vec!["a".into()], Cover::empty(1)).unwrap();
        assert_eq!(zero.to_string(), "0");
        let one = Sop::new(vec!["a".into()], Cover::one(1)).unwrap();
        assert_eq!(one.to_string(), "1");
    }

    #[test]
    fn display_multi_term() {
        let cover = Cover::from_cubes(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (2, false)]),
                Cube::from_literals(3, &[(1, true)]),
            ],
        );
        let sop = Sop::new(vec!["a".into(), "b".into(), "c".into()], cover).unwrap();
        assert_eq!(sop.to_string(), "a & !c | b");
        assert_eq!(sop.literal_count(), 3);
    }
}
