//! Two-level logic minimisation, in the style of espresso.
//!
//! The paper measures implementation area as the **literal count of the
//! unfactored prime-irredundant cover** produced by `espresso -Dso -S1`.
//! This crate reimplements the required machinery from scratch:
//!
//! * [`Cube`] — positional-cube representation of a product term,
//! * [`Cover`] — sums of products with cofactor / tautology / complement /
//!   containment operations (the classic unate-recursive paradigm),
//! * the espresso loop — [`expand`], [`irredundant`], [`reduce`] — driven by
//!   [`minimize`], which returns a prime and irredundant cover,
//! * [`Sop`] — pretty-printing with named inputs and literal counting.
//!
//! # Example
//!
//! Minimise `f = a·b + a·b'` (which collapses to `a`):
//!
//! ```
//! use modsyn_logic::{minimize, Cover, Cube};
//!
//! let on = Cover::from_cubes(2, vec![
//!     Cube::from_literals(2, &[(0, true), (1, true)]),
//!     Cube::from_literals(2, &[(0, true), (1, false)]),
//! ]);
//! let dc = Cover::empty(2);
//! let result = minimize(&on, &dc);
//! assert_eq!(result.cover.cube_count(), 1);
//! assert_eq!(result.cover.literal_count(), 1);
//! ```

mod complement;
mod cover;
mod cube;
mod error;
mod espresso;
mod exact;
mod gatesim;
mod hazard;
mod multi;
mod pla;
mod sop;
mod tautology;

pub use complement::complement;
pub use cover::Cover;
pub use cube::Cube;
pub use error::LogicError;
pub use espresso::{expand, irredundant, minimize, minimize_traced, reduce, MinimizeResult};
pub use exact::{minimize_exact, ExactLimits};
pub use gatesim::{simulate_cover, DelayModel, OutputEvent, SimulationTrace};
pub use hazard::{static_hazards, HazardReport};
pub use multi::{minimize_multi, MultiCover, MultiCube};
pub use pla::{parse_pla, write_pla};
pub use sop::Sop;
pub use tautology::is_tautology;
