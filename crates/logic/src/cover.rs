//! Sums of products.

use std::fmt;

use crate::{is_tautology, Cube};

/// A sum of product terms over a fixed variable universe.
///
/// ```
/// use modsyn_logic::{Cover, Cube};
/// let f = Cover::from_cubes(2, vec![
///     Cube::from_literals(2, &[(0, true)]),
///     Cube::from_literals(2, &[(1, true)]),
/// ]);
/// assert!(f.covers_minterm(&[true, false]));
/// assert!(!f.covers_minterm(&[false, false]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0) over `num_vars`.
    pub fn empty(num_vars: usize) -> Self {
        Cover {
            num_vars,
            cubes: Vec::new(),
        }
    }

    /// A cover holding the single universal cube (constant 1).
    pub fn one(num_vars: usize) -> Self {
        Cover {
            num_vars,
            cubes: vec![Cube::full(num_vars)],
        }
    }

    /// Builds a cover from cubes; empty cubes are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a cube's universe does not match `num_vars`.
    pub fn from_cubes(num_vars: usize, cubes: impl IntoIterator<Item = Cube>) -> Self {
        let cubes: Vec<Cube> = cubes
            .into_iter()
            .inspect(|c| assert_eq!(c.num_vars(), num_vars, "cube universe mismatch"))
            .filter(|c| !c.is_empty())
            .collect();
        Cover { num_vars, cubes }
    }

    /// Builds the cover of all given minterms.
    pub fn from_minterms<'a>(
        num_vars: usize,
        minterms: impl IntoIterator<Item = &'a [bool]>,
    ) -> Self {
        Cover::from_cubes(num_vars, minterms.into_iter().map(Cube::from_minterm))
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of product terms.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total literal count across cubes — the paper's area metric.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// The product terms.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube (ignored if empty).
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_vars, "cube universe mismatch");
        if !cube.is_empty() {
            self.cubes.push(cube);
        }
    }

    /// Removes the cube at `index` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> Cube {
        self.cubes.remove(index)
    }

    /// Whether the function is 1 on the given minterm.
    pub fn covers_minterm(&self, values: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(values))
    }

    /// The cofactor of the cover with respect to `cube` (the Shannon
    /// generalised cofactor): rows disjoint from `cube` are dropped, the
    /// rest have `cube`'s literals raised to don't-care.
    pub fn cofactor(&self, cube: &Cube) -> Cover {
        let mut out = Vec::new();
        for c in &self.cubes {
            if !c.intersects(cube) {
                continue;
            }
            let mut row = c.clone();
            for (v, _pol) in cube.literals() {
                row.set_literal(v, None);
            }
            out.push(row);
        }
        Cover {
            num_vars: self.num_vars,
            cubes: out,
        }
    }

    /// Cofactor by a single literal.
    pub fn cofactor_literal(&self, var: usize, polarity: bool) -> Cover {
        self.cofactor(&Cube::from_literals(self.num_vars, &[(var, polarity)]))
    }

    /// Whether the cover contains every minterm of `cube` (single-cube
    /// containment via the tautology of the cofactor).
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        is_tautology(&self.cofactor(cube))
    }

    /// Union of two covers over the same universe.
    pub fn union(&self, other: &Cover) -> Cover {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            num_vars: self.num_vars,
            cubes,
        }
    }

    /// Pairwise intersection of two covers (product of sums of products).
    pub fn intersect(&self, other: &Cover) -> Cover {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                let c = a.intersection(b);
                if !c.is_empty() {
                    cubes.push(c);
                }
            }
        }
        Cover {
            num_vars: self.num_vars,
            cubes,
        }
    }

    /// Removes cubes single-cube-contained in another cube of the cover.
    pub fn drop_contained(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if self.cubes[j].contains(&self.cubes[i])
                    && (self.cubes[i] != self.cubes[j] || i > j)
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        self.cubes
            .retain(|_| *it.next().expect("keep has one entry per cube"));
    }

    /// Picks the most binate variable (appears in both polarities, maximum
    /// occurrence count); falls back to the most frequent literal variable.
    /// `None` if no cube carries a literal.
    pub fn most_binate_variable(&self) -> Option<usize> {
        let n = self.num_vars;
        let mut pos = vec![0usize; n];
        let mut neg = vec![0usize; n];
        for c in &self.cubes {
            for (v, pol) in c.literals() {
                if pol {
                    pos[v] += 1;
                } else {
                    neg[v] += 1;
                }
            }
        }
        let mut best: Option<(usize, usize, usize)> = None; // (binate_min, total, var)
        for v in 0..n {
            let total = pos[v] + neg[v];
            if total == 0 {
                continue;
            }
            let binate_min = pos[v].min(neg[v]);
            let key = (binate_min, total, v);
            match best {
                None => best = Some(key),
                Some((bm, t, _)) => {
                    if binate_min > bm || (binate_min == bm && total > t) {
                        best = Some(key);
                    }
                }
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Exhaustive semantic equality check (2^n evaluation). Intended for
    /// tests and verification on small universes.
    ///
    /// # Panics
    ///
    /// Panics if the universe exceeds 24 variables.
    pub fn semantically_equals(&self, other: &Cover) -> bool {
        assert!(
            self.num_vars <= 24,
            "too many variables for exhaustive check"
        );
        debug_assert_eq!(self.num_vars, other.num_vars);
        let mut values = vec![false; self.num_vars];
        for bits in 0u64..(1u64 << self.num_vars) {
            for (v, val) in values.iter_mut().enumerate() {
                *val = bits >> v & 1 == 1;
            }
            if self.covers_minterm(&values) != other.covers_minterm(&values) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Cover {
        Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, true), (1, false)]),
                Cube::from_literals(2, &[(0, false), (1, true)]),
            ],
        )
    }

    #[test]
    fn evaluation_matches_semantics() {
        let f = xor2();
        assert!(!f.covers_minterm(&[false, false]));
        assert!(f.covers_minterm(&[true, false]));
        assert!(f.covers_minterm(&[false, true]));
        assert!(!f.covers_minterm(&[true, true]));
    }

    #[test]
    fn cofactor_by_literal() {
        let f = xor2();
        let f_a = f.cofactor_literal(0, true); // should be b'
        assert!(f_a.covers_minterm(&[true, false]));
        assert!(f_a.covers_minterm(&[false, false])); // a raised to dc
        assert!(!f_a.covers_minterm(&[false, true]));
    }

    #[test]
    fn covers_cube_via_tautology() {
        let f = Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, true)]),
                Cube::from_literals(2, &[(0, false)]),
            ],
        );
        assert!(f.covers_cube(&Cube::full(2)));
        let g = xor2();
        assert!(!g.covers_cube(&Cube::full(2)));
        assert!(g.covers_cube(&Cube::from_literals(2, &[(0, true), (1, false)])));
    }

    #[test]
    fn union_and_intersect() {
        let a = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(0, true)])]);
        let b = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(1, true)])]);
        let u = a.union(&b);
        assert_eq!(u.cube_count(), 2);
        let i = a.intersect(&b);
        assert_eq!(i.cube_count(), 1);
        assert!(i.covers_minterm(&[true, true]));
        assert!(!i.covers_minterm(&[true, false]));
    }

    #[test]
    fn drop_contained_removes_subsumed_rows() {
        let mut f = Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, true)]),
                Cube::from_literals(2, &[(0, true), (1, true)]),
                Cube::from_literals(2, &[(0, true)]), // duplicate
            ],
        );
        f.drop_contained();
        assert_eq!(f.cube_count(), 1);
        assert_eq!(f.cubes()[0].literal_count(), 1);
    }

    #[test]
    fn most_binate_picks_split_variable() {
        let f = xor2();
        let v = f.most_binate_variable().unwrap();
        assert!(v == 0 || v == 1);
        let unate = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(1, true)])]);
        assert_eq!(unate.most_binate_variable(), Some(1));
        assert_eq!(Cover::one(2).most_binate_variable(), None);
    }

    #[test]
    fn constants() {
        assert!(Cover::empty(3).is_empty());
        assert!(Cover::one(3).covers_minterm(&[false, true, false]));
        assert_eq!(Cover::empty(2).to_string(), "0");
    }

    #[test]
    fn semantic_equality() {
        let f = xor2();
        let g = Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, false), (1, true)]),
                Cube::from_literals(2, &[(0, true), (1, false)]),
            ],
        );
        assert!(f.semantically_equals(&g));
        assert!(!f.semantically_equals(&Cover::one(2)));
    }
}
