//! Product terms in positional-cube notation.

use std::fmt;

/// A product term over `n` boolean variables.
///
/// Each variable takes one of three states: required `1` (positive literal),
/// required `0` (negative literal), or don't-care (absent from the product).
/// Internally two bits per variable are stored — bit0 "allows 0", bit1
/// "allows 1" — so don't-care is `11`, a positive literal `10`… matching the
/// classic positional-cube notation where intersection is bitwise AND.
///
/// ```
/// use modsyn_logic::Cube;
/// let c = Cube::from_literals(3, &[(0, true), (2, false)]); // a · c'
/// assert_eq!(c.literal(0), Some(true));
/// assert_eq!(c.literal(1), None);
/// assert_eq!(c.literal(2), Some(false));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    num_vars: usize,
    /// Two bits per variable, 32 variables per word.
    words: Vec<u64>,
}

const VARS_PER_WORD: usize = 32;

impl Cube {
    /// The universal cube (every variable don't-care) over `num_vars`.
    pub fn full(num_vars: usize) -> Self {
        let words = num_vars.div_ceil(VARS_PER_WORD);
        let mut cube = Cube {
            num_vars,
            words: vec![u64::MAX; words],
        };
        cube.mask_tail();
        cube
    }

    fn mask_tail(&mut self) {
        let used = self.num_vars % VARS_PER_WORD;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (2 * used)) - 1;
            }
        }
    }

    /// Builds a cube from `(variable, polarity)` literals; unmentioned
    /// variables are don't-care.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range.
    pub fn from_literals(num_vars: usize, literals: &[(usize, bool)]) -> Self {
        let mut cube = Cube::full(num_vars);
        for &(v, pol) in literals {
            cube.set_literal(v, Some(pol));
        }
        cube
    }

    /// Builds the minterm cube for a complete assignment.
    pub fn from_minterm(values: &[bool]) -> Self {
        let mut cube = Cube::full(values.len());
        for (v, &val) in values.iter().enumerate() {
            cube.set_literal(v, Some(val));
        }
        cube
    }

    /// Number of variables in the cube's universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    fn slot(&self, var: usize) -> (usize, u32) {
        (var / VARS_PER_WORD, (2 * (var % VARS_PER_WORD)) as u32)
    }

    /// The literal on `var`: `Some(true)` positive, `Some(false)` negative,
    /// `None` don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn literal(&self, var: usize) -> Option<bool> {
        assert!(var < self.num_vars, "variable {var} out of range");
        let (w, s) = self.slot(var);
        match (self.words[w] >> s) & 0b11 {
            0b11 => None,
            0b10 => Some(true),
            0b01 => Some(false),
            _ => None, // empty slot: only in intersections; treated by is_empty
        }
    }

    /// Sets, changes or clears the literal on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_literal(&mut self, var: usize, literal: Option<bool>) {
        assert!(var < self.num_vars, "variable {var} out of range");
        let (w, s) = self.slot(var);
        let bits: u64 = match literal {
            None => 0b11,
            Some(true) => 0b10,
            Some(false) => 0b01,
        };
        self.words[w] = (self.words[w] & !(0b11 << s)) | (bits << s);
    }

    /// Whether some variable has the empty state (the cube denotes no
    /// minterm). Only intersections produce empty cubes.
    pub fn is_empty(&self) -> bool {
        // A slot is empty iff both bits are 0. Detect any 00 pair.
        for (i, &w) in self.words.iter().enumerate() {
            let vars_here =
                if i + 1 == self.words.len() && !self.num_vars.is_multiple_of(VARS_PER_WORD) {
                    self.num_vars % VARS_PER_WORD
                } else {
                    VARS_PER_WORD
                };
            let lo = w & 0x5555_5555_5555_5555;
            let hi = (w >> 1) & 0x5555_5555_5555_5555;
            let nonempty = lo | hi; // slot has some bit
            let mask = if vars_here == VARS_PER_WORD {
                0x5555_5555_5555_5555
            } else {
                ((1u64 << (2 * vars_here)) - 1) & 0x5555_5555_5555_5555
            };
            if nonempty & mask != mask {
                return true;
            }
        }
        false
    }

    /// Number of literals (non-don't-care variables).
    pub fn literal_count(&self) -> usize {
        (0..self.num_vars)
            .filter(|&v| self.literal(v).is_some())
            .count()
    }

    /// Bitwise intersection; empty if the cubes conflict on some variable.
    pub fn intersection(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Cube {
            num_vars: self.num_vars,
            words,
        }
    }

    /// Whether the two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Whether `self` contains `other` (every minterm of `other` is in
    /// `self`).
    pub fn contains(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars, other.num_vars);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Number of variables where the cubes have disjoint (conflicting)
    /// literal requirements.
    pub fn distance(&self, other: &Cube) -> usize {
        let inter = self.intersection(other);
        let mut count = 0usize;
        for v in 0..self.num_vars {
            let (w, s) = inter.slot(v);
            if (inter.words[w] >> s) & 0b11 == 0 {
                count += 1;
            }
        }
        count
    }

    /// The smallest cube containing both inputs (bitwise OR).
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.num_vars, other.num_vars);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Cube {
            num_vars: self.num_vars,
            words,
        }
    }

    /// Whether the cube contains the given minterm.
    pub fn covers_minterm(&self, values: &[bool]) -> bool {
        debug_assert_eq!(values.len(), self.num_vars);
        (0..self.num_vars).all(|v| match self.literal(v) {
            None => true,
            Some(pol) => pol == values[v],
        })
    }

    /// Variables carrying a literal, with polarity.
    pub fn literals(&self) -> Vec<(usize, bool)> {
        (0..self.num_vars)
            .filter_map(|v| self.literal(v).map(|pol| (v, pol)))
            .collect()
    }
}

impl fmt::Display for Cube {
    /// PLA-style string: `1` positive, `0` negative, `-` don't-care.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in 0..self.num_vars {
            let ch = match self.literal(v) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cube_has_no_literals() {
        let c = Cube::full(40); // spans two words
        assert_eq!(c.literal_count(), 0);
        assert!(!c.is_empty());
        for v in 0..40 {
            assert_eq!(c.literal(v), None);
        }
    }

    #[test]
    fn set_and_get_literals_across_words() {
        let mut c = Cube::full(70);
        c.set_literal(0, Some(true));
        c.set_literal(33, Some(false));
        c.set_literal(69, Some(true));
        assert_eq!(c.literal(0), Some(true));
        assert_eq!(c.literal(33), Some(false));
        assert_eq!(c.literal(69), Some(true));
        assert_eq!(c.literal_count(), 3);
        c.set_literal(33, None);
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    fn intersection_conflict_is_empty() {
        let a = Cube::from_literals(2, &[(0, true)]);
        let b = Cube::from_literals(2, &[(0, false)]);
        assert!(a.intersection(&b).is_empty());
        assert!(!a.intersects(&b));
        assert_eq!(a.distance(&b), 1);
    }

    #[test]
    fn containment() {
        let big = Cube::from_literals(3, &[(0, true)]);
        let small = Cube::from_literals(3, &[(0, true), (1, false)]);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn supercube_unions_spans() {
        let a = Cube::from_literals(2, &[(0, true), (1, true)]);
        let b = Cube::from_literals(2, &[(0, true), (1, false)]);
        let s = a.supercube(&b);
        assert_eq!(s.literal(0), Some(true));
        assert_eq!(s.literal(1), None);
    }

    #[test]
    fn minterm_coverage() {
        let c = Cube::from_literals(3, &[(0, true), (2, false)]);
        assert!(c.covers_minterm(&[true, false, false]));
        assert!(c.covers_minterm(&[true, true, false]));
        assert!(!c.covers_minterm(&[true, true, true]));
        assert!(!c.covers_minterm(&[false, true, false]));
    }

    #[test]
    fn display_pla_style() {
        let c = Cube::from_literals(4, &[(0, true), (3, false)]);
        assert_eq!(c.to_string(), "1--0");
    }

    #[test]
    fn from_minterm_fixes_every_variable() {
        let c = Cube::from_minterm(&[true, false, true]);
        assert_eq!(c.literal_count(), 3);
        assert_eq!(c.to_string(), "101");
    }

    #[test]
    fn empty_detection_is_per_slot_and_respects_tail() {
        let mut c = Cube::full(33);
        assert!(!c.is_empty());
        let conflict = Cube::from_literals(33, &[(32, true)]);
        c.set_literal(32, Some(false));
        assert!(c.intersection(&conflict).is_empty());
    }
}
