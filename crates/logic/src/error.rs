//! Error type for the logic crate.

use std::error::Error;
use std::fmt;

/// Errors raised by the logic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// The number of names does not match the cover's variable universe.
    UniverseMismatch {
        /// Number of names supplied.
        names: usize,
        /// Number of variables in the cover.
        variables: usize,
    },
    /// A `.pla` document was malformed.
    ParsePla {
        /// 1-based line number (0 for document-level problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::UniverseMismatch { names, variables } => write!(
                f,
                "universe mismatch: {names} names for {variables} variables"
            ),
            LogicError::ParsePla { line, message } => {
                write!(f, "pla parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = LogicError::UniverseMismatch {
            names: 2,
            variables: 5,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('5'));
    }
}
