//! Gate-level timing simulation of a two-level cover.
//!
//! Static hazards are invisible at the functional level — `f` is 1 before
//! and after the input change — and only appear once the AND/OR gates have
//! real delays: the product term holding the output can switch off before
//! its successor switches on, and the OR output glitches low. This module
//! builds that gate network (one AND per cube, one OR) with configurable
//! per-gate delays and simulates input sequences event-by-event, reporting
//! every output transition — so hazard removal can be *demonstrated*, not
//! just asserted.

use std::collections::BTreeMap;

use crate::Cover;

/// Per-gate delays of the two-level network.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Delay of each AND gate (one per cube, cover order).
    pub and_delays: Vec<u64>,
    /// Delay of the output OR gate.
    pub or_delay: u64,
}

impl DelayModel {
    /// Unit delays everywhere.
    pub fn unit(cubes: usize) -> Self {
        DelayModel {
            and_delays: vec![1; cubes],
            or_delay: 1,
        }
    }
}

/// One simulated change of the OR output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputEvent {
    /// Simulation time of the change.
    pub time: u64,
    /// The new output value.
    pub value: bool,
}

/// Result of [`simulate_cover`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimulationTrace {
    /// Every output transition, in time order.
    pub output_events: Vec<OutputEvent>,
    /// Glitches: settling phases in which the output changed more than
    /// once (its functional value changes at most once per single-input
    /// step, so extra edges are hazard pulses).
    pub glitches: usize,
}

/// Simulates the AND–OR network of `cover` against an input sequence:
/// `steps[i] = (time, input values after the step)`. Each step must change
/// at most one input, and steps must be far enough apart for the network to
/// settle (times strictly increasing; settle window = max delay sum).
///
/// Gates are zero-width (pure transport delay): an AND output at time `t`
/// reflects its inputs at `t − delay`.
///
/// # Panics
///
/// Panics if the delay model does not match the cover or the step times are
/// not strictly increasing.
pub fn simulate_cover(
    cover: &Cover,
    delays: &DelayModel,
    steps: &[(u64, Vec<bool>)],
) -> SimulationTrace {
    assert_eq!(
        delays.and_delays.len(),
        cover.cube_count(),
        "one delay per cube"
    );
    let mut trace = SimulationTrace::default();
    if steps.is_empty() {
        return trace;
    }
    for w in steps.windows(2) {
        assert!(w[0].0 < w[1].0, "step times must increase");
    }

    // Piecewise-constant input waveform; evaluate gates with transport
    // delays at every relevant time point.
    let input_at = |t: i128| -> &Vec<bool> {
        let mut current = &steps[0].1;
        for (time, values) in steps {
            if (*time as i128) <= t {
                current = values;
            } else {
                break;
            }
        }
        current
    };

    // Candidate event times: every step time shifted by every gate-path
    // delay combination.
    let mut times: Vec<u64> = Vec::new();
    for (t, _) in steps {
        for (ci, d) in delays.and_delays.iter().enumerate() {
            let _ = ci;
            times.push(t + d + delays.or_delay);
        }
    }
    times.sort_unstable();
    times.dedup();

    let or_at = |t: u64| -> bool {
        // AND i at time t sees inputs at t - and_delay[i]; OR sees ANDs at
        // t - or_delay.
        cover.cubes().iter().enumerate().any(|(i, cube)| {
            let tin = t as i128 - delays.or_delay as i128 - delays.and_delays[i] as i128;
            cube.covers_minterm(input_at(tin))
        })
    };

    // Initial value (before any event).
    let mut value = or_at(steps[0].0);
    let mut events: Vec<OutputEvent> = Vec::new();
    for &t in &times {
        let v = or_at(t);
        if v != value {
            events.push(OutputEvent { time: t, value: v });
            value = v;
        }
    }

    // Glitch counting: group events by the input step window they belong
    // to; more than one event per window is a hazard pulse.
    let mut per_window: BTreeMap<usize, usize> = BTreeMap::new();
    for e in &events {
        let window = steps
            .iter()
            .rposition(|(t, _)| *t + delays.or_delay <= e.time)
            .unwrap_or(0);
        *per_window.entry(window).or_insert(0) += 1;
    }
    trace.glitches = per_window.values().filter(|&&c| c > 1).count();
    trace.output_events = events;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    /// The textbook hazard function f = ab + a'c.
    fn hazardous() -> Cover {
        Cover::from_cubes(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (1, true)]),
                Cube::from_literals(3, &[(0, false), (2, true)]),
            ],
        )
    }

    #[test]
    fn static_one_hazard_manifests_with_skewed_delays() {
        let f = hazardous();
        // ab turns off fast (delay 1), a'c turns on slow (delay 3): the
        // output must glitch low when a falls with b = c = 1.
        let delays = DelayModel {
            and_delays: vec![1, 3],
            or_delay: 1,
        };
        let steps = vec![
            (0u64, vec![true, true, true]),
            (100, vec![false, true, true]), // a falls
        ];
        let trace = simulate_cover(&f, &delays, &steps);
        assert_eq!(trace.glitches, 1, "{:?}", trace.output_events);
        // Down at 102 (fast AND off), back up at 104 (slow AND on).
        assert_eq!(
            trace.output_events,
            vec![
                OutputEvent {
                    time: 102,
                    value: false
                },
                OutputEvent {
                    time: 104,
                    value: true
                },
            ]
        );
    }

    #[test]
    fn consensus_term_suppresses_the_glitch() {
        let mut f = hazardous();
        f.push(Cube::from_literals(3, &[(1, true), (2, true)])); // bc
        let delays = DelayModel {
            and_delays: vec![1, 3, 2],
            or_delay: 1,
        };
        let steps = vec![
            (0u64, vec![true, true, true]),
            (100, vec![false, true, true]),
        ];
        let trace = simulate_cover(&f, &delays, &steps);
        assert_eq!(trace.glitches, 0, "{:?}", trace.output_events);
        assert!(trace.output_events.is_empty(), "output stays high");
    }

    #[test]
    fn clean_transitions_produce_single_edges() {
        let f = hazardous();
        let delays = DelayModel::unit(2);
        let steps = vec![
            (0u64, vec![false, true, false]), // f = 0
            (100, vec![true, true, false]),   // a rises: f -> 1 via ab
            (200, vec![true, false, false]),  // b falls: f -> 0
        ];
        let trace = simulate_cover(&f, &delays, &steps);
        assert_eq!(trace.glitches, 0);
        assert_eq!(trace.output_events.len(), 2);
        assert!(trace.output_events[0].value);
        assert!(!trace.output_events[1].value);
    }

    #[test]
    fn favourable_delays_hide_the_hazard() {
        // Same hazardous cover, but the turning-on AND is the fast one: no
        // observable glitch (hazards are delay-dependent).
        let f = hazardous();
        let delays = DelayModel {
            and_delays: vec![3, 1],
            or_delay: 1,
        };
        let steps = vec![
            (0u64, vec![true, true, true]),
            (100, vec![false, true, true]),
        ];
        let trace = simulate_cover(&f, &delays, &steps);
        assert_eq!(trace.glitches, 0, "{:?}", trace.output_events);
    }
}
