//! Static hazard analysis of SOP implementations.
//!
//! The paper's flow notes that the derived prime-irredundant cover "may
//! contain static and dynamic hazards which can be removed by using some
//! known hazard removal techniques" (citing Lavagno/Keutzer/S-V, DAC '91).
//! This module provides the detection side for **static-1 hazards**: a
//! single-input change between two ON-set minterms that no single product
//! term covers end-to-end, so the output can glitch low.

use crate::Cover;

/// Report of static-1 hazard analysis over a set of input transitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HazardReport {
    /// The hazardous transitions: `(from, to)` minterm pairs with no common
    /// covering cube.
    pub hazardous: Vec<(Vec<bool>, Vec<bool>)>,
    /// Number of transitions examined.
    pub examined: usize,
}

impl HazardReport {
    /// Whether the implementation is free of static-1 hazards on the
    /// examined transitions.
    pub fn is_clean(&self) -> bool {
        self.hazardous.is_empty()
    }
}

/// Checks the given single-input-change transitions for static-1 hazards.
///
/// A transition `(a, b)` is only meaningful when `f(a) = f(b) = 1` and the
/// vectors differ in exactly one position; other pairs are skipped (not
/// counted as examined).
///
/// ```
/// use modsyn_logic::{static_hazards, Cover, Cube};
/// // f = ab + a'c has a static-1 hazard on b=c=1 when a flips.
/// let f = Cover::from_cubes(3, vec![
///     Cube::from_literals(3, &[(0, true), (1, true)]),
///     Cube::from_literals(3, &[(0, false), (2, true)]),
/// ]);
/// let report = static_hazards(&f, &[(vec![true, true, true], vec![false, true, true])]);
/// assert!(!report.is_clean());
/// ```
pub fn static_hazards(cover: &Cover, transitions: &[(Vec<bool>, Vec<bool>)]) -> HazardReport {
    let mut report = HazardReport::default();
    for (a, b) in transitions {
        if a.len() != cover.num_vars() || b.len() != cover.num_vars() {
            continue;
        }
        let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
        if diff != 1 || !cover.covers_minterm(a) || !cover.covers_minterm(b) {
            continue;
        }
        report.examined += 1;
        let covered_jointly = cover
            .cubes()
            .iter()
            .any(|c| c.covers_minterm(a) && c.covers_minterm(b));
        if !covered_jointly {
            report.hazardous.push((a.clone(), b.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    fn classic_hazard_function() -> Cover {
        // f = ab + a'c.
        Cover::from_cubes(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (1, true)]),
                Cube::from_literals(3, &[(0, false), (2, true)]),
            ],
        )
    }

    #[test]
    fn detects_the_textbook_hazard() {
        let f = classic_hazard_function();
        let report = static_hazards(&f, &[(vec![true, true, true], vec![false, true, true])]);
        assert_eq!(report.examined, 1);
        assert_eq!(report.hazardous.len(), 1);
    }

    #[test]
    fn consensus_term_removes_the_hazard() {
        // f = ab + a'c + bc is hazard-free on the same transition.
        let mut f = classic_hazard_function();
        f.push(Cube::from_literals(3, &[(1, true), (2, true)]));
        let report = static_hazards(&f, &[(vec![true, true, true], vec![false, true, true])]);
        assert_eq!(report.examined, 1);
        assert!(report.is_clean());
    }

    #[test]
    fn irrelevant_pairs_are_skipped() {
        let f = classic_hazard_function();
        let report = static_hazards(
            &f,
            &[
                // Two-bit change: skipped.
                (vec![true, true, true], vec![false, false, true]),
                // Output 0 on one side: skipped.
                (vec![true, false, false], vec![false, false, false]),
            ],
        );
        assert_eq!(report.examined, 0);
        assert!(report.is_clean());
    }
}
