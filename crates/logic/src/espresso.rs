//! The espresso minimisation loop: EXPAND, IRREDUNDANT, REDUCE.

use crate::{complement, Cover, Cube};

/// Result of [`minimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeResult {
    /// The minimised (prime, irredundant) cover.
    pub cover: Cover,
    /// Number of EXPAND/REDUCE iterations performed.
    pub iterations: usize,
}

impl MinimizeResult {
    /// Literal count of the result — the paper's two-level area metric.
    pub fn literal_count(&self) -> usize {
        self.cover.literal_count()
    }
}

/// EXPAND: raise each cube to a prime implicant against the OFF-set, then
/// drop single-cube-contained rows.
///
/// Cubes are processed largest-first so big primes get a chance to absorb
/// smaller cubes. Within a cube, raising is attempted on every literal in a
/// blocking-aware order (literals conflicting with the fewest OFF-cubes
/// first).
pub fn expand(cover: &Cover, off: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes = cover.cubes().to_vec();
    cubes.sort_by_key(|c| c.literal_count());

    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    for mut cube in cubes {
        // Skip if an already-expanded prime covers this cube.
        if out.iter().any(|p| p.contains(&cube)) {
            continue;
        }
        // Order candidate raises: fewest OFF-set conflicts first.
        let mut lits = cube.literals();
        lits.sort_by_key(|&(v, pol)| {
            off.cubes()
                .iter()
                .filter(|oc| oc.literal(v) == Some(!pol))
                .count()
        });
        for (v, _pol) in lits {
            let mut raised = cube.clone();
            raised.set_literal(v, None);
            if !off.cubes().iter().any(|oc| oc.intersects(&raised)) {
                cube = raised;
            }
        }
        out.retain(|p| !cube.contains(p));
        out.push(cube);
    }
    let mut result = Cover::from_cubes(n, out);
    result.drop_contained();
    result
}

/// IRREDUNDANT: greedily removes cubes covered by the rest of the cover plus
/// the don't-care set.
///
/// Cubes with the most literals (the most specific) are tried first, so the
/// surviving cover leans on large primes.
pub fn irredundant(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes = cover.cubes().to_vec();
    // Most-specific first: they are the most likely to be redundant.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].literal_count()));

    let mut removed = vec![false; cubes.len()];
    for &i in &order {
        let rest = Cover::from_cubes(
            n,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i && !removed[j])
                .map(|(_, c)| c.clone())
                .chain(dc.cubes().iter().cloned()),
        );
        if rest.covers_cube(&cubes[i]) {
            removed[i] = true;
        }
    }
    let survivors = cubes
        .drain(..)
        .enumerate()
        .filter(|&(i, _)| !removed[i])
        .map(|(_, c)| c);
    Cover::from_cubes(n, survivors)
}

/// REDUCE: shrinks each cube to the smallest cube that still covers its
/// private part of the ON-set, opening room for the next EXPAND to escape a
/// local minimum.
///
/// Implements the classic formula `c~ = c ∩ supercube(complement((F∖c ∪ D)
/// cofactored by c))`, applied sequentially so coverage is preserved.
pub fn reduce(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes = cover.cubes().to_vec();
    // Largest cubes first: standard espresso ordering for REDUCE.
    cubes.sort_by_key(Cube::literal_count);

    let mut reduced: Vec<Option<Cube>> = cubes.iter().cloned().map(Some).collect();
    for i in 0..cubes.len() {
        let c = cubes[i].clone();
        let rest = Cover::from_cubes(
            n,
            reduced
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .filter_map(|(_, x)| x.clone())
                .chain(dc.cubes().iter().cloned()),
        );
        let comp = complement(&rest.cofactor(&c));
        reduced[i] = match comp.cubes() {
            // The rest covers everything under c: c can vanish entirely.
            [] => None,
            [first, more @ ..] => {
                let sup = more.iter().fold(first.clone(), |acc, k| acc.supercube(k));
                Some(c.intersection(&sup))
            }
        };
    }
    Cover::from_cubes(n, reduced.into_iter().flatten().filter(|c| !c.is_empty()))
}

/// Runs the full espresso loop: EXPAND, IRREDUNDANT, then REDUCE/EXPAND/
/// IRREDUNDANT until the cost (cube count, then literal count) stops
/// improving. The result is a prime and irredundant cover of `on` within
/// `on ∪ dc`.
///
/// # Panics
///
/// Panics (debug assertions) if the result fails verification: it must cover
/// every ON-set cube and stay disjoint from the OFF-set.
pub fn minimize(on: &Cover, dc: &Cover) -> MinimizeResult {
    let n = on.num_vars();
    assert_eq!(dc.num_vars(), n, "on/dc universe mismatch");
    let off = complement(&on.union(dc));

    let mut f = on.clone();
    f.drop_contained();
    f = expand(&f, &off);
    f = irredundant(&f, dc);

    let mut iterations = 1usize;
    loop {
        let cost = (f.cube_count(), f.literal_count());
        let reduced = reduce(&f, dc);
        let expanded = expand(&reduced, &off);
        let candidate = irredundant(&expanded, dc);
        let new_cost = (candidate.cube_count(), candidate.literal_count());
        iterations += 1;
        if new_cost < cost {
            f = candidate;
        } else {
            break;
        }
        if iterations > 20 {
            break; // safety net; espresso converges in a few passes
        }
    }

    debug_assert!(
        on.cubes().iter().all(|c| f.union(dc).covers_cube(c)),
        "minimised cover lost part of the ON-set"
    );
    debug_assert!(
        f.cubes()
            .iter()
            .all(|c| !off.cubes().iter().any(|oc| oc.intersects(c))),
        "minimised cover intersects the OFF-set"
    );

    MinimizeResult {
        cover: f,
        iterations,
    }
}

/// [`minimize`] wrapped in an `espresso` observability span recording cube
/// counts before/after, the literal count, and the iteration total. With a
/// disabled tracer this is exactly [`minimize`].
pub fn minimize_traced(on: &Cover, dc: &Cover, tracer: &modsyn_obs::Tracer) -> MinimizeResult {
    if !tracer.is_enabled() {
        return minimize(on, dc);
    }
    let _span = tracer.span("espresso");
    tracer.gauge("cubes_in", on.cube_count() as f64);
    let result = minimize(on, dc);
    tracer.counter("iterations", result.iterations as u64);
    tracer.gauge("cubes_out", result.cover.cube_count() as f64);
    tracer.gauge("literals", result.literal_count() as f64);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_tautology;

    fn cube(n: usize, lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(n, lits)
    }

    #[test]
    fn merge_adjacent_minterms() {
        // ab + ab' = a.
        let on = Cover::from_cubes(
            2,
            vec![
                cube(2, &[(0, true), (1, true)]),
                cube(2, &[(0, true), (1, false)]),
            ],
        );
        let r = minimize(&on, &Cover::empty(2));
        assert_eq!(r.cover.cube_count(), 1);
        assert_eq!(r.cover.literal_count(), 1);
        assert!(r.cover.semantically_equals(&on));
    }

    #[test]
    fn xor_cannot_be_reduced() {
        let on = Cover::from_cubes(
            2,
            vec![
                cube(2, &[(0, true), (1, false)]),
                cube(2, &[(0, false), (1, true)]),
            ],
        );
        let r = minimize(&on, &Cover::empty(2));
        assert_eq!(r.cover.cube_count(), 2);
        assert_eq!(r.cover.literal_count(), 4);
    }

    #[test]
    fn dont_cares_enable_collapse() {
        // ON = {11}, DC = {10, 01, 00}: function can become constant 1.
        let on = Cover::from_cubes(2, vec![cube(2, &[(0, true), (1, true)])]);
        let dc = Cover::from_cubes(
            2,
            vec![cube(2, &[(0, true), (1, false)]), cube(2, &[(0, false)])],
        );
        let r = minimize(&on, &dc);
        assert_eq!(r.cover.literal_count(), 0);
        assert!(is_tautology(&r.cover));
    }

    #[test]
    fn minimize_traced_records_an_espresso_span() {
        let on = Cover::from_cubes(
            2,
            vec![
                cube(2, &[(0, true), (1, true)]),
                cube(2, &[(0, true), (1, false)]),
            ],
        );
        let tracer = modsyn_obs::Tracer::enabled();
        let r = minimize_traced(&on, &Cover::empty(2), &tracer);
        let report = tracer.report();
        let spans = report.spans_with_prefix("espresso");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].gauge("cubes_in"), Some(2.0));
        assert_eq!(spans[0].gauge("cubes_out"), Some(1.0));
        assert_eq!(spans[0].counter("iterations"), Some(r.iterations as u64));
    }

    #[test]
    fn redundant_consensus_cube_is_removed() {
        // ab + a'c + bc: the bc term is redundant.
        let on = Cover::from_cubes(
            3,
            vec![
                cube(3, &[(0, true), (1, true)]),
                cube(3, &[(0, false), (2, true)]),
                cube(3, &[(1, true), (2, true)]),
            ],
        );
        let r = minimize(&on, &Cover::empty(3));
        assert_eq!(r.cover.cube_count(), 2);
        assert!(r.cover.semantically_equals(&on));
    }

    #[test]
    fn expanded_cubes_are_prime() {
        let on = Cover::from_cubes(
            3,
            vec![
                cube(3, &[(0, true), (1, true), (2, true)]),
                cube(3, &[(0, true), (1, true), (2, false)]),
                cube(3, &[(0, true), (1, false), (2, true)]),
            ],
        );
        let r = minimize(&on, &Cover::empty(3));
        // Every cube must be prime: raising any literal must hit the OFF-set.
        let off = complement(&on);
        for c in r.cover.cubes() {
            for (v, _) in c.literals() {
                let mut raised = c.clone();
                raised.set_literal(v, None);
                assert!(
                    off.cubes().iter().any(|oc| oc.intersects(&raised)),
                    "cube {c} is not prime (raising var {v} stays valid)"
                );
            }
        }
    }

    #[test]
    fn majority_function_minimises_to_three_cubes() {
        // maj(a,b,c) minterms: 011 101 110 111 -> ab + ac + bc.
        let on = Cover::from_minterms(
            3,
            [
                &[false, true, true][..],
                &[true, false, true],
                &[true, true, false],
                &[true, true, true],
            ],
        );
        let r = minimize(&on, &Cover::empty(3));
        assert_eq!(r.cover.cube_count(), 3);
        assert_eq!(r.cover.literal_count(), 6);
        assert!(r.cover.semantically_equals(&on));
    }

    #[test]
    fn random_functions_round_trip_semantically() {
        let n = 4;
        let mut seed = 0xdeadbeefcafef00du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..25 {
            let truth: Vec<bool> = (0..(1 << n)).map(|_| next() % 2 == 0).collect();
            let minterms: Vec<Vec<bool>> = truth
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t)
                .map(|(bits, _)| (0..n).map(|v| bits >> v & 1 == 1).collect())
                .collect();
            if minterms.is_empty() {
                continue;
            }
            let on = Cover::from_minterms(n, minterms.iter().map(|m| m.as_slice()));
            let r = minimize(&on, &Cover::empty(n));
            assert!(
                r.cover.semantically_equals(&on),
                "on:\n{on}\nresult:\n{}",
                r.cover
            );
            assert!(r.cover.literal_count() <= on.literal_count());
        }
    }

    #[test]
    fn reduce_keeps_coverage() {
        let on = Cover::from_cubes(3, vec![cube(3, &[(0, true)]), cube(3, &[(1, true)])]);
        let reduced = reduce(&on, &Cover::empty(3));
        for c in on.cubes() {
            assert!(reduced.covers_cube(c), "lost {c}");
        }
    }
}
