//! Cover complementation by Shannon expansion.

use crate::{Cover, Cube};

/// Computes a cover of the complement `f'`.
///
/// Recursive Shannon expansion about the most binate variable, with
/// single-cube complement (De Morgan) at the leaves. The result is not
/// minimal but is exact.
///
/// ```
/// use modsyn_logic::{complement, Cover, Cube};
/// let f = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(0, true)])]);
/// let g = complement(&f); // a' over two variables
/// assert!(g.covers_minterm(&[false, false]));
/// assert!(g.covers_minterm(&[false, true]));
/// assert!(!g.covers_minterm(&[true, false]));
/// ```
pub fn complement(cover: &Cover) -> Cover {
    let n = cover.num_vars();
    if cover.is_empty() {
        return Cover::one(n);
    }
    if cover.cubes().iter().any(|c| c.literal_count() == 0) {
        return Cover::empty(n);
    }
    if cover.cube_count() == 1 {
        return complement_cube(n, &cover.cubes()[0]);
    }

    // If unate, De Morgan over rows would explode; Shannon still works and
    // most_binate falls back to the most frequent variable.
    let split = cover
        .most_binate_variable()
        .expect("nonempty cover with literals");
    let pos_co = complement(&cover.cofactor_literal(split, true));
    let neg_co = complement(&cover.cofactor_literal(split, false));

    let mut out = Cover::empty(n);
    for c in pos_co.cubes() {
        let mut c = c.clone();
        c.set_literal(split, Some(true));
        out.push(c);
    }
    for c in neg_co.cubes() {
        let mut c = c.clone();
        c.set_literal(split, Some(false));
        out.push(c);
    }
    merge_split(&mut out, split);
    out
}

/// Merge pairs differing only in the split literal (x·c + x'·c = c).
fn merge_split(cover: &mut Cover, split: usize) {
    let cubes = cover.cubes().to_vec();
    let mut used = vec![false; cubes.len()];
    let mut merged = Vec::new();
    for i in 0..cubes.len() {
        if used[i] {
            continue;
        }
        let mut ci = cubes[i].clone();
        if ci.literal(split).is_some() {
            for (j, cj) in cubes.iter().enumerate().skip(i + 1) {
                if used[j] {
                    continue;
                }
                let mut a = ci.clone();
                let mut b = cj.clone();
                a.set_literal(split, None);
                b.set_literal(split, None);
                if a == b && ci.literal(split) != cj.literal(split) {
                    used[j] = true;
                    ci.set_literal(split, None);
                    break;
                }
            }
        }
        merged.push(ci);
    }
    *cover = Cover::from_cubes(cover.num_vars(), merged);
}

/// De Morgan complement of a single cube: one unit cube per literal.
fn complement_cube(num_vars: usize, cube: &Cube) -> Cover {
    let mut out = Cover::empty(num_vars);
    for (v, pol) in cube.literals() {
        out.push(Cube::from_literals(num_vars, &[(v, !pol)]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_tautology;

    fn cube(n: usize, lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(n, lits)
    }

    #[test]
    fn complement_of_zero_is_one() {
        let g = complement(&Cover::empty(3));
        assert!(is_tautology(&g));
    }

    #[test]
    fn complement_of_one_is_zero() {
        let g = complement(&Cover::one(3));
        assert!(g.is_empty());
    }

    #[test]
    fn union_with_complement_is_tautology() {
        let f = Cover::from_cubes(
            3,
            vec![
                cube(3, &[(0, true), (1, false)]),
                cube(3, &[(1, true), (2, true)]),
            ],
        );
        let g = complement(&f);
        assert!(is_tautology(&f.union(&g)));
        // And disjoint:
        assert!(f.intersect(&g).cubes().iter().all(|c| c.is_empty()) || f.intersect(&g).is_empty());
    }

    #[test]
    fn double_complement_is_identity_semantically() {
        let f = Cover::from_cubes(
            3,
            vec![cube(3, &[(0, true)]), cube(3, &[(1, false), (2, true)])],
        );
        let ff = complement(&complement(&f));
        assert!(f.semantically_equals(&ff));
    }

    #[test]
    fn complement_matches_brute_force_on_random_covers() {
        let n = 4;
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let mut cubes = Vec::new();
            for _ in 0..(next() % 5 + 1) {
                let mut c = Cube::full(n);
                for v in 0..n {
                    match next() % 3 {
                        0 => c.set_literal(v, Some(true)),
                        1 => c.set_literal(v, Some(false)),
                        _ => {}
                    }
                }
                cubes.push(c);
            }
            let f = Cover::from_cubes(n, cubes);
            let g = complement(&f);
            for bits in 0u32..(1 << n) {
                let values: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
                assert_ne!(
                    f.covers_minterm(&values),
                    g.covers_minterm(&values),
                    "disagree on {values:?} for cover\n{f}"
                );
            }
        }
    }
}
