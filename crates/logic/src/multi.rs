//! Multi-output two-level minimisation with shared product terms.
//!
//! The paper's area metric is per-output (`espresso -Dso`); real PLAs share
//! AND-plane terms between outputs. This module minimises a bank of
//! functions over a common input universe, representing each product term
//! as an input cube plus an **output mask** — the set of functions the term
//! feeds. The loop mirrors espresso: expand input parts against the
//! per-output OFF-sets, widen output masks, and drop per-output redundant
//! connections.

use std::collections::HashMap;

use crate::{complement, Cover, Cube};

/// One shared product term: an input cube feeding the outputs in `outputs`
/// (bit `o` set = term is part of function `o`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCube {
    /// The input product.
    pub cube: Cube,
    /// Output connection mask.
    pub outputs: u64,
}

/// A multi-output cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCover {
    num_vars: usize,
    num_outputs: usize,
    cubes: Vec<MultiCube>,
}

impl MultiCover {
    /// The shared product terms.
    pub fn cubes(&self) -> &[MultiCube] {
        &self.cubes
    }

    /// Number of distinct product terms (AND gates / PLA rows).
    pub fn term_count(&self) -> usize {
        self.cubes.len()
    }

    /// Input literals summed over distinct terms — the shared-AND-plane
    /// cost.
    pub fn input_literal_count(&self) -> usize {
        self.cubes.iter().map(|m| m.cube.literal_count()).sum()
    }

    /// Output connections (OR-plane contacts).
    pub fn output_connection_count(&self) -> usize {
        self.cubes
            .iter()
            .map(|m| m.outputs.count_ones() as usize)
            .sum()
    }

    /// The single-output view of function `o`.
    pub fn function(&self, o: usize) -> Cover {
        Cover::from_cubes(
            self.num_vars,
            self.cubes
                .iter()
                .filter(|m| m.outputs >> o & 1 == 1)
                .map(|m| m.cube.clone()),
        )
    }
}

/// Minimises the function bank `(on[i], dc[i])` into a shared-term cover.
///
/// Every `on[i]`/`dc[i]` pair must live in the same input universe. Result
/// guarantee: each output's function is semantically unchanged
/// (covers its ON-set, avoids its OFF-set); terms are input-prime with
/// maximal output masks; no output connection is redundant.
///
/// # Panics
///
/// Panics if the universes disagree or more than 64 outputs are given.
pub fn minimize_multi(on: &[Cover], dc: &[Cover]) -> MultiCover {
    assert_eq!(on.len(), dc.len(), "one dc set per output");
    assert!(on.len() <= 64, "at most 64 outputs");
    assert!(!on.is_empty(), "at least one output");
    let n = on[0].num_vars();
    for c in on.iter().chain(dc) {
        assert_eq!(c.num_vars(), n, "shared input universe");
    }
    let m = on.len();
    let offs: Vec<Cover> = (0..m).map(|o| complement(&on[o].union(&dc[o]))).collect();

    // Seed: per-output minimised covers, then merge equal input cubes.
    let mut seed: HashMap<Cube, u64> = HashMap::new();
    for (o, cover) in on.iter().enumerate() {
        let single = crate::minimize(cover, &dc[o]);
        for cube in single.cover.cubes() {
            *seed.entry(cube.clone()).or_insert(0) |= 1 << o;
        }
    }
    let mut cubes: Vec<MultiCube> = seed
        .into_iter()
        .map(|(cube, outputs)| MultiCube { cube, outputs })
        .collect();
    cubes.sort_by(|a, b| a.cube.cmp(&b.cube).then(a.outputs.cmp(&b.outputs)));

    // Expand phase: raise input literals where every connected output's
    // OFF-set permits; then widen the output mask with every compatible,
    // useful output.
    #[allow(clippy::needless_range_loop)] // `cubes` is re-borrowed mutably inside the loop
    for i in 0..cubes.len() {
        let mut cube = cubes[i].cube.clone();
        let mask = cubes[i].outputs;
        for (v, _pol) in cube.literals() {
            let mut raised = cube.clone();
            raised.set_literal(v, None);
            let ok = (0..m)
                .filter(|&o| mask >> o & 1 == 1)
                .all(|o| !offs[o].cubes().iter().any(|oc| oc.intersects(&raised)));
            if ok {
                cube = raised;
            }
        }
        let mut outputs = mask;
        for o in 0..m {
            if outputs >> o & 1 == 1 {
                continue;
            }
            let off_clash = offs[o].cubes().iter().any(|oc| oc.intersects(&cube));
            let useful = on[o].cubes().iter().any(|c| c.intersects(&cube));
            if !off_clash && useful {
                outputs |= 1 << o;
            }
        }
        cubes[i] = MultiCube { cube, outputs };
    }

    // Irredundant phase, per output: drop connections whose contribution
    // is covered by the other connected terms plus the don't-cares.
    #[allow(clippy::needless_range_loop)] // `o` also masks `cubes[i].outputs`
    for o in 0..m {
        // Process most-specific terms first, as in the single-output loop.
        let mut order: Vec<usize> = (0..cubes.len())
            .filter(|&i| cubes[i].outputs >> o & 1 == 1)
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].cube.literal_count()));
        for &i in &order {
            let rest = Cover::from_cubes(
                n,
                cubes
                    .iter()
                    .enumerate()
                    .filter(|&(j, mc)| j != i && mc.outputs >> o & 1 == 1)
                    .map(|(_, mc)| mc.cube.clone())
                    .chain(dc[o].cubes().iter().cloned()),
            );
            if rest.covers_cube(&cubes[i].cube) {
                cubes[i].outputs &= !(1 << o);
            }
        }
    }
    cubes.retain(|mc| mc.outputs != 0);

    let result = MultiCover {
        num_vars: n,
        num_outputs: m,
        cubes,
    };
    debug_assert!((0..m).all(|o| {
        let f = result.function(o);
        on[o].cubes().iter().all(|c| f.union(&dc[o]).covers_cube(c))
            && f.cubes()
                .iter()
                .all(|c| !offs[o].cubes().iter().any(|oc| oc.intersects(c)))
    }));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize, lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(n, lits)
    }

    #[test]
    fn shared_term_is_discovered() {
        // f0 = ab, f1 = ab + c: the ab term should be shared.
        let f0 = Cover::from_cubes(3, vec![cube(3, &[(0, true), (1, true)])]);
        let f1 = Cover::from_cubes(
            3,
            vec![cube(3, &[(0, true), (1, true)]), cube(3, &[(2, true)])],
        );
        let dc = vec![Cover::empty(3), Cover::empty(3)];
        let result = minimize_multi(&[f0.clone(), f1.clone()], &dc);
        assert_eq!(result.term_count(), 2, "{:?}", result.cubes());
        let shared = result
            .cubes()
            .iter()
            .find(|mc| mc.outputs == 0b11)
            .expect("ab is shared");
        assert_eq!(shared.cube.literal_count(), 2);
        assert!(result.function(0).semantically_equals(&f0));
        assert!(result.function(1).semantically_equals(&f1));
    }

    #[test]
    fn functions_stay_correct_on_random_banks() {
        let mut seed = 0x0123_4567_89ab_cdefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 4usize;
            let m = 3usize;
            let mut on: Vec<Cover> = Vec::new();
            for _ in 0..m {
                let minterms: Vec<Vec<bool>> = (0..(1u32 << n))
                    .filter(|_| next() % 3 == 0)
                    .map(|bits| (0..n).map(|v| bits >> v & 1 == 1).collect())
                    .collect();
                on.push(Cover::from_minterms(n, minterms.iter().map(Vec::as_slice)));
            }
            let dc = vec![Cover::empty(n); m];
            let result = minimize_multi(&on, &dc);
            for (o, f) in on.iter().enumerate() {
                assert!(
                    result.function(o).semantically_equals(f),
                    "output {o} changed"
                );
            }
            // Sharing can never use more distinct terms than the seed
            // single-output covers combined.
            let single_total: usize = on
                .iter()
                .map(|f| crate::minimize(f, &Cover::empty(n)).cover.cube_count())
                .sum();
            assert!(result.term_count() <= single_total);
        }
    }

    #[test]
    fn identical_functions_collapse_to_one_term_set() {
        let f = Cover::from_cubes(2, vec![cube(2, &[(0, true)])]);
        let result = minimize_multi(
            &[f.clone(), f.clone(), f.clone()],
            &[Cover::empty(2), Cover::empty(2), Cover::empty(2)],
        );
        assert_eq!(result.term_count(), 1);
        assert_eq!(result.cubes()[0].outputs, 0b111);
        assert_eq!(result.output_connection_count(), 3);
        assert_eq!(result.input_literal_count(), 1);
    }

    #[test]
    fn redundant_connections_are_dropped() {
        // f0 = a + ab: the ab connection to f0 is redundant after sharing.
        let f0 = Cover::from_cubes(2, vec![cube(2, &[(0, true)])]);
        let f1 = Cover::from_cubes(2, vec![cube(2, &[(0, true), (1, true)])]);
        let result = minimize_multi(
            &[f0.clone(), f1.clone()],
            &[Cover::empty(2), Cover::empty(2)],
        );
        for o in 0..2 {
            let f = result.function(o);
            assert!(f.semantically_equals(if o == 0 { &f0 } else { &f1 }));
        }
        // f1's only term is ab (a would hit f1's OFF-set), f0's is a.
        assert!(result.cubes().iter().all(|mc| mc.outputs.count_ones() == 1));
    }

    #[test]
    fn dont_cares_enable_wider_sharing() {
        // f0 = ab with b' don't-care -> expands to a, sharable with f1 = a.
        let f0 = Cover::from_cubes(2, vec![cube(2, &[(0, true), (1, true)])]);
        let dc0 = Cover::from_cubes(2, vec![cube(2, &[(0, true), (1, false)])]);
        let f1 = Cover::from_cubes(2, vec![cube(2, &[(0, true)])]);
        let result = minimize_multi(&[f0, f1], &[dc0, Cover::empty(2)]);
        assert_eq!(result.term_count(), 1);
        assert_eq!(result.cubes()[0].outputs, 0b11);
    }
}
