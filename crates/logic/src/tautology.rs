//! Tautology checking via the unate-recursive paradigm.

use crate::{Cover, Cube};

/// Whether the cover represents the constant-1 function.
///
/// Uses the classic unate-recursive scheme: quick unate checks at each node,
/// Shannon expansion about the most binate variable otherwise.
///
/// ```
/// use modsyn_logic::{is_tautology, Cover, Cube};
/// let f = Cover::from_cubes(1, vec![
///     Cube::from_literals(1, &[(0, true)]),
///     Cube::from_literals(1, &[(0, false)]),
/// ]);
/// assert!(is_tautology(&f));
/// ```
pub fn is_tautology(cover: &Cover) -> bool {
    // Fast paths.
    if cover.cubes().iter().any(|c| c.literal_count() == 0) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }

    // Unate test: if every variable appears in only one polarity, the cover
    // is a tautology iff it contains the universal cube — already checked.
    let n = cover.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for c in cover.cubes() {
        for (v, pol) in c.literals() {
            if pol {
                pos[v] = true;
            } else {
                neg[v] = true;
            }
        }
    }
    if (0..n).all(|v| !(pos[v] && neg[v])) {
        return false;
    }

    let split = cover
        .most_binate_variable()
        .expect("non-unate cover has a binate variable");
    let t = cover.cofactor(&Cube::from_literals(n, &[(split, true)]));
    if !is_tautology(&t) {
        return false;
    }
    let e = cover.cofactor(&Cube::from_literals(n, &[(split, false)]));
    is_tautology(&e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize, lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(n, lits)
    }

    #[test]
    fn constant_one_is_tautology() {
        assert!(is_tautology(&Cover::one(4)));
    }

    #[test]
    fn constant_zero_is_not() {
        assert!(!is_tautology(&Cover::empty(4)));
    }

    #[test]
    fn single_literal_is_not_tautology() {
        let f = Cover::from_cubes(2, vec![cube(2, &[(0, true)])]);
        assert!(!is_tautology(&f));
    }

    #[test]
    fn complementary_pair_is_tautology() {
        let f = Cover::from_cubes(3, vec![cube(3, &[(1, true)]), cube(3, &[(1, false)])]);
        assert!(is_tautology(&f));
    }

    #[test]
    fn full_minterm_expansion_is_tautology() {
        let n = 3;
        let mut cubes = Vec::new();
        for bits in 0..(1 << n) {
            let lits: Vec<(usize, bool)> = (0..n).map(|v| (v, bits >> v & 1 == 1)).collect();
            cubes.push(cube(n, &lits));
        }
        assert!(is_tautology(&Cover::from_cubes(n, cubes)));
    }

    #[test]
    fn missing_one_minterm_is_not_tautology() {
        let n = 3;
        let mut cubes = Vec::new();
        for bits in 1..(1 << n) {
            let lits: Vec<(usize, bool)> = (0..n).map(|v| (v, bits >> v & 1 == 1)).collect();
            cubes.push(cube(n, &lits));
        }
        assert!(!is_tautology(&Cover::from_cubes(n, cubes)));
    }

    #[test]
    fn mixed_granularity_tautology() {
        // a + a'b + a'b' = 1.
        let f = Cover::from_cubes(
            2,
            vec![
                cube(2, &[(0, true)]),
                cube(2, &[(0, false), (1, true)]),
                cube(2, &[(0, false), (1, false)]),
            ],
        );
        assert!(is_tautology(&f));
    }

    #[test]
    fn agrees_with_exhaustive_on_random_covers() {
        // Deterministic pseudo-random covers, checked against brute force.
        let n = 4;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mut cubes = Vec::new();
            let count = (next() % 6 + 1) as usize;
            for _ in 0..count {
                let mut c = Cube::full(n);
                for v in 0..n {
                    match next() % 3 {
                        0 => c.set_literal(v, Some(true)),
                        1 => c.set_literal(v, Some(false)),
                        _ => {}
                    }
                }
                cubes.push(c);
            }
            let f = Cover::from_cubes(n, cubes);
            let brute = (0u32..(1 << n)).all(|bits| {
                let values: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
                f.covers_minterm(&values)
            });
            assert_eq!(is_tautology(&f), brute, "cover:\n{f}");
        }
    }
}
