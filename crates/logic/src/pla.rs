//! Berkeley PLA format (`.pla`) import/export for single-output covers —
//! the interchange format of espresso itself.

use std::fmt::Write as _;

use crate::{Cover, Cube, LogicError};

/// Serialises a single-output cover as espresso's `.pla` format: `.i`,
/// `.o 1`, one `<input-cube> 1` row per product term, `.e`.
///
/// ```
/// use modsyn_logic::{write_pla, Cover, Cube};
/// let f = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(0, true)])]);
/// let text = write_pla(&f);
/// assert!(text.contains(".i 2"));
/// assert!(text.contains("1- 1"));
/// ```
pub fn write_pla(cover: &Cover) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".i {}", cover.num_vars());
    let _ = writeln!(out, ".o 1");
    let _ = writeln!(out, ".p {}", cover.cube_count());
    for cube in cover.cubes() {
        let _ = writeln!(out, "{cube} 1");
    }
    let _ = writeln!(out, ".e");
    out
}

/// Parses a single-output `.pla` document into `(on_set, dc_set)` covers.
///
/// Rows with output `1` go to the ON-set, `-`/`2` to the don't-care set,
/// and `0`/`~` rows are ignored (OFF-set rows are implied).
///
/// # Errors
///
/// Returns [`LogicError::ParsePla`] on malformed headers, rows of the
/// wrong width, or unknown characters.
pub fn parse_pla(input: &str) -> Result<(Cover, Cover), LogicError> {
    let mut num_inputs: Option<usize> = None;
    let mut on: Vec<Cube> = Vec::new();
    let mut dc: Vec<Cube> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| LogicError::ParsePla {
            line: lineno + 1,
            message: message.to_string(),
        };
        if let Some(rest) = line.strip_prefix(".i") {
            if let Some(rest) = rest.strip_prefix('l') {
                // .ilb: input labels, ignored.
                let _ = rest;
                continue;
            }
            num_inputs = Some(rest.trim().parse().map_err(|_| err("bad .i count"))?);
        } else if let Some(rest) = line.strip_prefix(".o") {
            if rest.starts_with('b') {
                continue; // .ob output labels
            }
            let outs: usize = rest.trim().parse().map_err(|_| err("bad .o count"))?;
            if outs != 1 {
                return Err(err("only single-output PLAs are supported"));
            }
        } else if line.starts_with(".p") || line.starts_with(".e") || line.starts_with(".type") {
            continue;
        } else if line.starts_with('.') {
            return Err(err("unknown directive"));
        } else {
            let n = num_inputs.ok_or_else(|| err("row before .i"))?;
            let mut parts = line.split_whitespace();
            let in_part = parts.next().ok_or_else(|| err("empty row"))?;
            let out_part = parts.next().ok_or_else(|| err("row missing output"))?;
            if in_part.len() != n {
                return Err(err("row width does not match .i"));
            }
            let mut cube = Cube::full(n);
            for (v, ch) in in_part.chars().enumerate() {
                match ch {
                    '1' => cube.set_literal(v, Some(true)),
                    '0' => cube.set_literal(v, Some(false)),
                    '-' | '2' => {}
                    _ => return Err(err("unknown input character")),
                }
            }
            match out_part {
                "1" | "4" => on.push(cube),
                "-" | "2" => dc.push(cube),
                "0" | "~" => {}
                _ => return Err(err("unknown output character")),
            }
        }
    }
    let n = num_inputs.ok_or(LogicError::ParsePla {
        line: 0,
        message: "missing .i".into(),
    })?;
    Ok((Cover::from_cubes(n, on), Cover::from_cubes(n, dc)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize;

    #[test]
    fn round_trip_preserves_semantics() {
        let f = Cover::from_cubes(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (1, false)]),
                Cube::from_literals(3, &[(2, true)]),
            ],
        );
        let (on, dc) = parse_pla(&write_pla(&f)).unwrap();
        assert!(dc.is_empty());
        assert!(on.semantically_equals(&f));
    }

    #[test]
    fn parses_dont_care_rows() {
        let (on, dc) = parse_pla(".i 2\n.o 1\n11 1\n00 -\n.e\n").unwrap();
        assert_eq!(on.cube_count(), 1);
        assert_eq!(dc.cube_count(), 1);
        // And the pair feeds straight into minimize.
        let r = minimize(&on, &dc);
        assert!(r.cover.covers_minterm(&[true, true]));
    }

    #[test]
    fn rejects_multi_output() {
        assert!(matches!(
            parse_pla(".i 2\n.o 2\n11 10\n.e\n"),
            Err(LogicError::ParsePla { .. })
        ));
    }

    #[test]
    fn rejects_bad_rows() {
        assert!(parse_pla(".i 2\n.o 1\n1 1\n").is_err()); // wrong width
        assert!(parse_pla(".i 2\n.o 1\n1x 1\n").is_err()); // bad char
        assert!(parse_pla("11 1\n").is_err()); // row before .i
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (on, _) = parse_pla("# header\n.i 1\n.o 1\n\n1 1 # term\n.e\n").unwrap();
        assert_eq!(on.cube_count(), 1);
    }
}
