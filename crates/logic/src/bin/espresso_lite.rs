//! `espresso_lite` — minimise a single-output PLA.
//!
//! ```text
//! espresso_lite <file.pla | -> [--exact] [--stats]
//! ```
//!
//! Reads a single-output `.pla` (ON rows `1`, don't-care rows `-`), prints
//! the minimised cover in the same format.

use std::io::Read as _;
use std::process::ExitCode;

use modsyn_logic::{minimize, minimize_exact, parse_pla, write_pla, ExactLimits};

fn main() -> ExitCode {
    let mut source = String::new();
    let mut exact = false;
    let mut stats = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--exact" => exact = true,
            "--stats" => stats = true,
            other if source.is_empty() => source = other.to_string(),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if source.is_empty() {
        eprintln!("usage: espresso_lite <file.pla | -> [--exact] [--stats]");
        return ExitCode::FAILURE;
    }

    let text = if source == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error reading stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{source}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (on, dc) = match parse_pla(&text) {
        Ok(covers) => covers,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if exact {
        minimize_exact(&on, &dc, &ExactLimits::default())
    } else {
        minimize(&on, &dc)
    };
    if stats {
        eprintln!(
            "c {} -> {} cubes, {} -> {} literals",
            on.cube_count(),
            result.cover.cube_count(),
            on.literal_count(),
            result.cover.literal_count()
        );
    }
    print!("{}", write_pla(&result.cover));
    ExitCode::SUCCESS
}
