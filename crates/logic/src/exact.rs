//! Exact two-level minimisation (Quine–McCluskey primes + branch-and-bound
//! covering).
//!
//! The paper's area numbers come from `espresso -Dso -S1` — *exact*
//! single-output minimisation. [`minimize_exact`] reproduces that: generate
//! all prime implicants of `ON ∪ DC`, then select a minimum cover of the
//! ON-set by branch and bound over the covering table (essential primes and
//! row/column dominance first), minimising cube count and, among equal cube
//! counts, literal count.

use std::collections::HashSet;

use crate::{minimize, Cover, Cube, MinimizeResult};

/// Limits for [`minimize_exact`]; beyond them the heuristic espresso loop
/// is used instead (exactness does not scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactLimits {
    /// Maximum input variables (minterm enumeration is `2^n`).
    pub max_vars: usize,
    /// Maximum branch-and-bound nodes before falling back.
    pub max_nodes: usize,
    /// Maximum care minterms (prime generation is quadratic in them).
    pub max_care_minterms: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_vars: 14,
            max_nodes: 200_000,
            max_care_minterms: 2_000,
        }
    }
}

/// Exactly minimises `on` against the don't-care set `dc`.
///
/// Falls back to the heuristic [`minimize`] when the instance exceeds
/// `limits` — the result is then still prime and irredundant, just not
/// provably minimum.
///
/// ```
/// use modsyn_logic::{minimize_exact, Cover, Cube, ExactLimits};
/// // xor needs exactly 2 cubes / 4 literals.
/// let on = Cover::from_cubes(2, vec![
///     Cube::from_literals(2, &[(0, true), (1, false)]),
///     Cube::from_literals(2, &[(0, false), (1, true)]),
/// ]);
/// let r = minimize_exact(&on, &Cover::empty(2), &ExactLimits::default());
/// assert_eq!(r.cover.cube_count(), 2);
/// assert_eq!(r.cover.literal_count(), 4);
/// ```
pub fn minimize_exact(on: &Cover, dc: &Cover, limits: &ExactLimits) -> MinimizeResult {
    let n = on.num_vars();
    assert_eq!(dc.num_vars(), n, "on/dc universe mismatch");
    if n > limits.max_vars {
        return minimize(on, dc);
    }

    // Enumerate care minterms.
    let mut on_minterms: Vec<u32> = Vec::new();
    let mut care_minterms: Vec<u32> = Vec::new();
    for bits in 0u32..(1 << n) {
        let values: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
        if on.covers_minterm(&values) {
            on_minterms.push(bits);
            care_minterms.push(bits);
        } else if dc.covers_minterm(&values) {
            care_minterms.push(bits);
        }
    }
    if on_minterms.is_empty() {
        return MinimizeResult {
            cover: Cover::empty(n),
            iterations: 0,
        };
    }
    if care_minterms.len() > limits.max_care_minterms {
        return minimize(on, dc);
    }

    let primes = prime_implicants(n, &care_minterms);

    // Covering table: per ON minterm, the primes covering it.
    let covers_minterm = |p: &(u32, u32), m: u32| -> bool {
        // p = (value, mask): mask bit set = literal position fixed to value.
        (m ^ p.0) & p.1 == 0
    };
    let mut table: Vec<Vec<usize>> = on_minterms
        .iter()
        .map(|&m| {
            (0..primes.len())
                .filter(|&pi| covers_minterm(&primes[pi], m))
                .collect()
        })
        .collect();

    // Branch and bound over prime selections.
    let literal_cost: Vec<usize> = primes.iter().map(|p| p.1.count_ones() as usize).collect();
    let mut best: Option<(usize, usize, Vec<usize>)> = None; // cubes, literals, picks
    let mut nodes = 0usize;
    let mut picks: Vec<usize> = Vec::new();
    branch(
        &mut table,
        &literal_cost,
        &mut picks,
        &mut best,
        &mut nodes,
        limits.max_nodes,
    );

    let Some((_, _, chosen)) = best else {
        return minimize(on, dc); // node budget blown
    };
    let cubes = chosen.iter().map(|&pi| prime_to_cube(n, primes[pi]));
    MinimizeResult {
        cover: Cover::from_cubes(n, cubes),
        iterations: nodes,
    }
}

/// Quine–McCluskey prime generation over `(value, mask)` cubes — `mask`
/// bits mark fixed positions.
fn prime_implicants(n: usize, care: &[u32]) -> Vec<(u32, u32)> {
    let full_mask: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let mut current: HashSet<(u32, u32)> = care.iter().map(|&m| (m, full_mask)).collect();
    let mut primes: Vec<(u32, u32)> = Vec::new();

    while !current.is_empty() {
        let items: Vec<(u32, u32)> = current.iter().copied().collect();
        let mut merged_away: HashSet<(u32, u32)> = HashSet::new();
        let mut next: HashSet<(u32, u32)> = HashSet::new();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                let (va, ma) = items[i];
                let (vb, mb) = items[j];
                if ma != mb {
                    continue;
                }
                let diff = va ^ vb;
                if diff.count_ones() == 1 && diff & ma != 0 {
                    let mask = ma & !diff;
                    next.insert((va & mask, mask));
                    merged_away.insert(items[i]);
                    merged_away.insert(items[j]);
                }
            }
        }
        for item in items {
            if !merged_away.contains(&item) {
                primes.push(item);
            }
        }
        current = next;
    }
    primes
}

fn prime_to_cube(n: usize, (value, mask): (u32, u32)) -> Cube {
    let mut cube = Cube::full(n);
    for v in 0..n {
        if mask >> v & 1 == 1 {
            cube.set_literal(v, Some(value >> v & 1 == 1));
        }
    }
    cube
}

fn branch(
    table: &mut Vec<Vec<usize>>,
    literal_cost: &[usize],
    picks: &mut Vec<usize>,
    best: &mut Option<(usize, usize, Vec<usize>)>,
    nodes: &mut usize,
    max_nodes: usize,
) {
    *nodes += 1;
    if *nodes > max_nodes {
        return;
    }
    // Bound: current cost.
    let cost = (
        picks.len(),
        picks.iter().map(|&p| literal_cost[p]).sum::<usize>(),
    );
    if let Some((bc, bl, _)) = best {
        if cost.0 > *bc || (cost.0 == *bc && cost.1 >= *bl) {
            return;
        }
    }
    // Find an uncovered row (pick the one with fewest options — most
    // constrained first).
    let uncovered: Option<usize> = table
        .iter()
        .enumerate()
        .filter(|(_, options)| !options.is_empty())
        .min_by_key(|(_, options)| options.len())
        .map(|(i, _)| i);
    let Some(row) = uncovered else {
        // Everything covered (empty rows mean "already covered" here
        // because we clear them on cover).
        let all_done = table.iter().all(Vec::is_empty);
        if all_done {
            let entry = (cost.0, cost.1, picks.clone());
            match best {
                None => *best = Some(entry),
                Some((bc, bl, _)) if cost.0 < *bc || (cost.0 == *bc && cost.1 < *bl) => {
                    *best = Some(entry);
                }
                _ => {}
            }
        }
        return;
    };

    let options = table[row].clone();
    for pi in options {
        // Apply: remove all rows covered by prime pi.
        let mut removed: Vec<(usize, Vec<usize>)> = Vec::new();
        for (r, opts) in table.iter_mut().enumerate() {
            if !opts.is_empty() && opts.contains(&pi) {
                removed.push((r, std::mem::take(opts)));
            }
        }
        picks.push(pi);
        branch(table, literal_cost, picks, best, nodes, max_nodes);
        picks.pop();
        for (r, opts) in removed {
            table[r] = opts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize, lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(n, lits)
    }

    #[test]
    fn constant_functions() {
        let r = minimize_exact(&Cover::empty(3), &Cover::empty(3), &ExactLimits::default());
        assert!(r.cover.is_empty());
        let r = minimize_exact(&Cover::one(3), &Cover::empty(3), &ExactLimits::default());
        assert_eq!(r.cover.cube_count(), 1);
        assert_eq!(r.cover.literal_count(), 0);
    }

    #[test]
    fn majority_is_three_cubes_six_literals() {
        let on = Cover::from_minterms(
            3,
            [
                &[false, true, true][..],
                &[true, false, true],
                &[true, true, false],
                &[true, true, true],
            ],
        );
        let r = minimize_exact(&on, &Cover::empty(3), &ExactLimits::default());
        assert_eq!(r.cover.cube_count(), 3);
        assert_eq!(r.cover.literal_count(), 6);
        assert!(r.cover.semantically_equals(&on));
    }

    #[test]
    fn xor3_needs_four_cubes() {
        let minterms: Vec<Vec<bool>> = (0u8..8)
            .filter(|b| b.count_ones() % 2 == 1)
            .map(|b| (0..3).map(|v| b >> v & 1 == 1).collect())
            .collect();
        let on = Cover::from_minterms(3, minterms.iter().map(Vec::as_slice));
        let r = minimize_exact(&on, &Cover::empty(3), &ExactLimits::default());
        assert_eq!(r.cover.cube_count(), 4);
        assert_eq!(r.cover.literal_count(), 12);
    }

    #[test]
    fn dont_cares_are_exploited() {
        // ON = {11}, DC = everything else: constant 1.
        let on = Cover::from_cubes(2, vec![cube(2, &[(0, true), (1, true)])]);
        let dc = Cover::from_cubes(2, vec![cube(2, &[(0, false)]), cube(2, &[(1, false)])]);
        let r = minimize_exact(&on, &dc, &ExactLimits::default());
        assert_eq!(r.cover.literal_count(), 0);
    }

    #[test]
    fn exact_never_beats_brute_force_optimum_and_matches_semantics() {
        let mut seed = 0x5bd1_e995_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = 4usize;
            let truth: Vec<bool> = (0..(1 << n)).map(|_| next() % 3 == 0).collect();
            let minterms: Vec<Vec<bool>> = truth
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t)
                .map(|(bits, _)| (0..n).map(|v| bits >> v & 1 == 1).collect())
                .collect();
            if minterms.is_empty() {
                continue;
            }
            let on = Cover::from_minterms(n, minterms.iter().map(Vec::as_slice));
            let exact = minimize_exact(&on, &Cover::empty(n), &ExactLimits::default());
            let heuristic = minimize(&on, &Cover::empty(n));
            assert!(exact.cover.semantically_equals(&on));
            assert!(
                exact.cover.cube_count() <= heuristic.cover.cube_count(),
                "exact {} > heuristic {}",
                exact.cover.cube_count(),
                heuristic.cover.cube_count()
            );
            if exact.cover.cube_count() == heuristic.cover.cube_count() {
                assert!(exact.cover.literal_count() <= heuristic.cover.literal_count());
            }
        }
    }

    #[test]
    fn oversized_instances_fall_back_to_heuristic() {
        let limits = ExactLimits {
            max_vars: 2,
            max_nodes: 10,
            max_care_minterms: 2_000,
        };
        let on = Cover::from_cubes(3, vec![cube(3, &[(0, true)])]);
        let r = minimize_exact(&on, &Cover::empty(3), &limits);
        assert!(r.cover.semantically_equals(&on));
    }
}
