//! Concurrent-program skeleton templates.
//!
//! Each skeleton is a handshake pattern lifted from a concurrent-programming
//! idiom — a channel rendezvous, a staged pipeline, a mutex-guarded critical
//! section, a fork/join barrier — expressed as a DSL fragment. Compiled
//! through [`modsyn_stg::StgBuilder::cycle`] the templates yield 1-safe,
//! live, consistent STGs by construction, and every template stays within
//! the free-choice class (choices, where present, are input-led), so they
//! are valid in-theory corpus leaves.
//!
//! Like [`modsyn_check::StgRecipe`], a skeleton exposes
//! [`declare_signals`](Skeleton::declare_signals) + [`body`](Skeleton::body)
//! so the composition engine can embed several templates side by side in
//! one larger cycle under distinct name prefixes.

use modsyn_stg::{Frag, SignalId, SignalKind, Stg, StgBuilder, StgError};

/// A concurrent-program handshake template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skeleton {
    /// A synchronous channel: the sender's request is acknowledged by the
    /// receiver (`req+ ack+ req- ack-`), the four-phase rendezvous.
    Channel,
    /// An `n`-stage pipeline: a request enters stage 0 and the token is
    /// handed down the stages with adjacent-stage overlap — stage `k`
    /// resets concurrently with stage `k+1` accepting (`n` in `2..=6`,
    /// clamped).
    Pipeline(u8),
    /// Two clients competing for a critical section: an input-led free
    /// choice between `r0+ g0+ r0- g0-` and `r1+ g1+ r1- g1-` — the lock
    /// is granted to whichever request the environment raises.
    MutexPair,
    /// A fork/join barrier: a request forks `n` concurrent workers, the
    /// join releases the request and pulses a completion output (`n` in
    /// `2..=4`, clamped).
    ForkJoin(u8),
}

impl Skeleton {
    /// Stable template name, used in derivation strings.
    pub fn name(&self) -> String {
        match self {
            Skeleton::Channel => "chan".to_string(),
            Skeleton::Pipeline(_) => format!("pipe{}", self.arity()),
            Skeleton::MutexPair => "mutex".to_string(),
            Skeleton::ForkJoin(_) => format!("fj{}", self.arity()),
        }
    }

    fn arity(&self) -> usize {
        match self {
            Skeleton::Channel | Skeleton::MutexPair => 0,
            Skeleton::Pipeline(n) => (*n as usize).clamp(2, 6),
            Skeleton::ForkJoin(n) => (*n as usize).clamp(2, 4),
        }
    }

    /// `(inputs, outputs)` signal counts of the template.
    pub fn signals(&self) -> (usize, usize) {
        match self {
            Skeleton::Channel => (1, 1),
            Skeleton::Pipeline(_) => (1, self.arity()),
            Skeleton::MutexPair => (2, 2),
            Skeleton::ForkJoin(_) => (1, self.arity() + 1),
        }
    }

    /// Declares the template's signals on `b`, each name prefixed with
    /// `prefix`, in the order [`Self::body`] expects (inputs first).
    ///
    /// # Errors
    ///
    /// Returns [`StgError::DuplicateSignal`] if a prefixed name collides
    /// with one already declared on the builder.
    pub fn declare_signals(
        &self,
        b: &mut StgBuilder,
        prefix: &str,
    ) -> Result<Vec<SignalId>, StgError> {
        let (inputs, outputs) = self.signals();
        (0..inputs + outputs)
            .map(|i| {
                if i < inputs {
                    b.signal(format!("{prefix}i{i}"), SignalKind::Input)
                } else {
                    b.signal(format!("{prefix}o{}", i - inputs), SignalKind::Output)
                }
            })
            .collect()
    }

    /// The template's cycle body over `ids` (as returned by
    /// [`Self::declare_signals`]). Single-exit, so it can close a cycle or
    /// be sequenced into a composed one.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is shorter than the template's signal count.
    pub fn body(&self, ids: &[SignalId]) -> Frag {
        let (inputs, outputs) = self.signals();
        assert!(
            ids.len() >= inputs + outputs,
            "skeleton needs {} signals",
            inputs + outputs
        );
        let pulse = |s: SignalId| Frag::seq([Frag::rise(s), Frag::fall(s)]);
        match self {
            Skeleton::Channel => Frag::seq([
                Frag::rise(ids[0]),
                Frag::rise(ids[1]),
                Frag::fall(ids[0]),
                Frag::fall(ids[1]),
            ]),
            Skeleton::Pipeline(_) => {
                let n = self.arity();
                let stage = |k: usize| ids[1 + k];
                let mut frags = vec![Frag::rise(ids[0]), Frag::rise(stage(0)), Frag::fall(ids[0])];
                // Hand the token down: stage k resets while stage k+1
                // accepts, the classic pipeline overlap.
                for k in 1..n {
                    frags.push(Frag::par([Frag::fall(stage(k - 1)), Frag::rise(stage(k))]));
                }
                frags.push(Frag::fall(stage(n - 1)));
                Frag::seq(frags)
            }
            Skeleton::MutexPair => {
                let client = |r: SignalId, g: SignalId| {
                    Frag::seq([Frag::rise(r), Frag::rise(g), Frag::fall(r), Frag::fall(g)])
                };
                Frag::choice([client(ids[0], ids[2]), client(ids[1], ids[3])])
            }
            Skeleton::ForkJoin(_) => {
                let n = self.arity();
                Frag::seq([
                    Frag::rise(ids[0]),
                    Frag::par((0..n).map(|k| pulse(ids[1 + k]))),
                    Frag::fall(ids[0]),
                    pulse(ids[1 + n]),
                ])
            }
        }
    }

    /// Compiles the template into a standalone STG named after it.
    pub fn build(&self) -> Stg {
        let mut b = StgBuilder::new(format!("skel-{}", self.name()));
        let ids = self
            .declare_signals(&mut b, "")
            .expect("template names are unique");
        b.cycle(self.body(&ids))
            .expect("templates emit single-exit bodies")
    }

    /// All templates at representative arities, for sweeps and tests.
    pub fn all() -> Vec<Skeleton> {
        vec![
            Skeleton::Channel,
            Skeleton::Pipeline(2),
            Skeleton::Pipeline(4),
            Skeleton::MutexPair,
            Skeleton::ForkJoin(2),
            Skeleton::ForkJoin(3),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::{NetClass, ReachabilityOptions};
    use modsyn_sg::{derive, DeriveOptions};

    #[test]
    fn all_templates_are_live_safe_and_within_free_choice() {
        for skel in Skeleton::all() {
            let stg = skel.build();
            let g = stg
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", skel.name()));
            assert!(g.is_safe(), "{} not safe", skel.name());
            assert!(g.deadlocks().is_empty(), "{} deadlocks", skel.name());
            assert!(
                stg.net().classify() <= NetClass::FreeChoice,
                "{} beyond free choice",
                skel.name()
            );
        }
    }

    #[test]
    fn all_templates_are_consistent() {
        for skel in Skeleton::all() {
            let stg = skel.build();
            let sg = derive(&stg, &DeriveOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", skel.name()));
            modsyn_check::check_consistency(&sg).unwrap_or_else(|e| panic!("{}: {e}", skel.name()));
        }
    }

    #[test]
    fn mutex_is_a_real_choice() {
        let stg = Skeleton::MutexPair.build();
        assert_eq!(stg.net().classify(), NetClass::FreeChoice);
        assert_eq!(stg.net().structural_report().choice_places, 1);
    }

    #[test]
    fn pipeline_and_forkjoin_are_marked_graphs() {
        assert_eq!(
            Skeleton::Pipeline(3).build().net().classify(),
            NetClass::MarkedGraph
        );
        assert_eq!(
            Skeleton::ForkJoin(3).build().net().classify(),
            NetClass::MarkedGraph
        );
    }

    #[test]
    fn arities_are_clamped() {
        assert_eq!(Skeleton::Pipeline(99).signals().1, 6);
        assert_eq!(Skeleton::ForkJoin(0).signals().1, 3);
        assert_eq!(Skeleton::Pipeline(99).name(), "pipe6");
    }
}
