//! The typed rejection taxonomy.
//!
//! Every way a synthesis method can decline a corpus case is mapped onto a
//! closed, testable enum. The contract the corpus pipeline enforces is
//! three-valued: a method either *certifies* (oracle-verified result),
//! *rejects with a type* (one of the variants here — a legitimate class or
//! capacity boundary), or the run is a **violation** (panic, untyped
//! failure, oracle-refuted output). Out-of-theory probes must land on a
//! [class rejection](Rejection::is_class); in-theory cases may at worst hit
//! a [capacity rejection](Rejection::is_capacity) on the methods the paper
//! itself reports aborting (direct SAT limits, Lavagno state splitting).
//!
//! Tags mirror the serving layer's 422 `synth_error_tag` vocabulary so a
//! rejection observed through the daemon and one observed in-process
//! compare equal in reports.

use modsyn::SynthesisError;
use modsyn_sg::SgError;

/// A typed rejection: every non-certifying, non-violating outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rejection {
    /// The net is outside the method's structural theory (beyond live safe
    /// free-choice) — the *expected* verdict for asymmetric-choice probes.
    BeyondFreeChoice,
    /// The SAT search hit its backtrack limit before a verdict.
    BacktrackLimit,
    /// No CSC assignment exists within the configured signal cap.
    NoSolution,
    /// The Lavagno-style flow would need state splitting.
    StateSplittingRequired,
    /// State-graph derivation exceeded its state budget.
    StateBudget,
    /// More signals than the packed state code supports.
    TooManySignals,
    /// The final graph still violates CSC after insertion.
    CscUnresolved,
    /// The run was cancelled before a verdict.
    Aborted,
    /// The supervised retry ladder ran out of rungs.
    Exhausted,
    /// Any other state-graph error (inconsistency, STG validation).
    StateGraph,
}

impl Rejection {
    /// Maps a [`SynthesisError`] onto the taxonomy. Total: every error a
    /// method can return has a typed rejection.
    pub fn of(error: &SynthesisError) -> Rejection {
        match error {
            SynthesisError::NotFreeChoice => Rejection::BeyondFreeChoice,
            SynthesisError::BacktrackLimit { .. } => Rejection::BacktrackLimit,
            SynthesisError::NoSolution { .. } => Rejection::NoSolution,
            SynthesisError::StateSplittingRequired => Rejection::StateSplittingRequired,
            SynthesisError::CscUnresolved { .. } => Rejection::CscUnresolved,
            SynthesisError::Aborted { .. } => Rejection::Aborted,
            SynthesisError::Exhausted { .. } => Rejection::Exhausted,
            SynthesisError::Sg(SgError::StateBudgetExceeded { .. }) => Rejection::StateBudget,
            SynthesisError::Sg(SgError::TooManySignals { .. }) => Rejection::TooManySignals,
            SynthesisError::Sg(_) => Rejection::StateGraph,
            // `SynthesisError` is non_exhaustive; future variants are
            // still typed, at the coarsest grain.
            _ => Rejection::StateGraph,
        }
    }

    /// Stable snake-less tag, aligned with the daemon's 422
    /// `synth_error_tag` vocabulary where the variants coincide.
    pub fn tag(&self) -> &'static str {
        match self {
            Rejection::BeyondFreeChoice => "not-free-choice",
            Rejection::BacktrackLimit => "backtrack-limit",
            Rejection::NoSolution => "no-solution",
            Rejection::StateSplittingRequired => "state-splitting-required",
            Rejection::StateBudget => "state-budget",
            Rejection::TooManySignals => "too-many-signals",
            Rejection::CscUnresolved => "csc-unresolved",
            Rejection::Aborted => "aborted",
            Rejection::Exhausted => "exhausted",
            Rejection::StateGraph => "state-graph",
        }
    }

    /// A structural-class rejection: the one verdict out-of-theory probes
    /// must receive from theory-scoped methods.
    pub fn is_class(&self) -> bool {
        matches!(self, Rejection::BeyondFreeChoice)
    }

    /// A capacity rejection: resource/solvability boundaries the paper's
    /// own Table 1 reports for the comparators (never acceptable as a
    /// *class* verdict, but legitimate for in-theory cases on the
    /// restricted methods).
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            Rejection::BacktrackLimit
                | Rejection::NoSolution
                | Rejection::StateSplittingRequired
                | Rejection::StateBudget
                | Rejection::TooManySignals
        )
    }

    /// Every taxonomy variant, for exhaustiveness tests.
    pub fn all() -> [Rejection; 10] {
        [
            Rejection::BeyondFreeChoice,
            Rejection::BacktrackLimit,
            Rejection::NoSolution,
            Rejection::StateSplittingRequired,
            Rejection::StateBudget,
            Rejection::TooManySignals,
            Rejection::CscUnresolved,
            Rejection::Aborted,
            Rejection::Exhausted,
            Rejection::StateGraph,
        ]
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_synthesis_error_maps_to_a_type() {
        let cases: Vec<(SynthesisError, Rejection)> = vec![
            (SynthesisError::NotFreeChoice, Rejection::BeyondFreeChoice),
            (
                SynthesisError::BacktrackLimit {
                    state_signals: 2,
                    elapsed: 0.1,
                },
                Rejection::BacktrackLimit,
            ),
            (
                SynthesisError::NoSolution { max_signals: 5 },
                Rejection::NoSolution,
            ),
            (
                SynthesisError::StateSplittingRequired,
                Rejection::StateSplittingRequired,
            ),
            (
                SynthesisError::CscUnresolved {
                    remaining_conflicts: 1,
                },
                Rejection::CscUnresolved,
            ),
            (SynthesisError::Aborted { elapsed: 0.2 }, Rejection::Aborted),
            (
                SynthesisError::Exhausted {
                    attempts: Vec::new(),
                },
                Rejection::Exhausted,
            ),
            (
                SynthesisError::Sg(SgError::StateBudgetExceeded { budget: 10 }),
                Rejection::StateBudget,
            ),
            (
                SynthesisError::Sg(SgError::TooManySignals { requested: 70 }),
                Rejection::TooManySignals,
            ),
            (
                SynthesisError::Sg(SgError::Inconsistent {
                    signal: "x".into(),
                    detail: "d".into(),
                }),
                Rejection::StateGraph,
            ),
        ];
        for (error, expected) in cases {
            assert_eq!(Rejection::of(&error), expected, "{error}");
        }
    }

    #[test]
    fn tags_are_unique_and_stable() {
        let all = Rejection::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.tag(), b.tag());
            }
        }
        assert_eq!(Rejection::BeyondFreeChoice.tag(), "not-free-choice");
        assert_eq!(Rejection::BacktrackLimit.tag(), "backtrack-limit");
        assert_eq!(
            Rejection::StateSplittingRequired.tag(),
            "state-splitting-required"
        );
    }

    #[test]
    fn class_and_capacity_partition_sensibly() {
        assert!(Rejection::BeyondFreeChoice.is_class());
        assert!(!Rejection::BeyondFreeChoice.is_capacity());
        for r in Rejection::all() {
            assert!(
                !(r.is_class() && r.is_capacity()),
                "{r}: class and capacity overlap"
            );
        }
        assert!(Rejection::BacktrackLimit.is_capacity());
        assert!(!Rejection::Aborted.is_capacity());
    }
}
