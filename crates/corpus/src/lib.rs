//! Compositional benchmark-corpus engine.
//!
//! The paper's Table-1 evaluation covers 23 hand-picked STGs; this crate
//! manufactures *thousands*, with their key properties guaranteed by
//! construction rather than by luck:
//!
//! * [`compose`] grows large STGs from small certified leaves via
//!   **articulation** (sequential glue through fresh articulation outputs)
//!   and **synchronous products** (concurrent bodies joined by a rendezvous
//!   pulse), Devillers-style: liveness, 1-safety and the free-choice class
//!   bound are inherited from the leaves, and every case carries a
//!   [`Certificate`] that [`check_certificate`] spot-checks against the
//!   independent `modsyn-check` oracle.
//! * [`asym`] draws live safe **asymmetric-choice** probes (Wimmel's class,
//!   one structural tier beyond free choice) that exist to be *rejected,
//!   typed* — they pin the exact boundary where the paper's theory stops.
//! * [`skeleton`] derives STGs from concurrent-program skeletons: channel
//!   rendezvous, staged pipelines, mutex pairs, fork/join barriers.
//! * [`reject`] is the closed rejection taxonomy (aligned with the serving
//!   layer's 422 tags), and [`verdict`] runs cases through the synthesis
//!   methods enforcing the three-valued contract: certified, typed
//!   rejection, or violation — no panics, no silent wrong answers.
//!
//! The `corpus` binary in `modsyn-bench` drives seed sweeps through this
//! crate into `BENCH_corpus.json`, guarded by `benchguard --corpus-only`.

pub mod asym;
pub mod compose;
pub mod reject;
pub mod skeleton;
pub mod verdict;

pub use asym::{gen_asym, is_asymmetric_choice, AsymRecipe};
pub use compose::{
    check_certificate, gen_corpus, Certificate, CertificateViolation, CorpusNode, CorpusRecipe,
    Unit,
};
pub use reject::Rejection;
pub use skeleton::Skeleton;
pub use verdict::{evaluate_case, CaseReport, EvalOptions, Expectation, MethodOutcome, Verdict};

/// The mixed corpus stream: seeds `0..count` with every eighth case an
/// asymmetric-choice probe, the rest composed in-theory cases. This is the
/// single source of truth the bench bin, the CI smoke job and the
/// integration tests all draw from, so their numbers agree.
pub fn corpus_case(seed: u64) -> (modsyn_stg::Stg, Expectation) {
    if seed % 8 == 7 {
        (gen_asym(seed).build(), Expectation::BeyondTheory)
    } else {
        (gen_corpus(seed).build().0, Expectation::InTheory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_stream_mixes_expectations() {
        let cases: Vec<Expectation> = (0..16).map(|s| corpus_case(s).1).collect();
        assert_eq!(
            cases
                .iter()
                .filter(|e| **e == Expectation::BeyondTheory)
                .count(),
            2
        );
        assert_eq!(corpus_case(7).1, Expectation::BeyondTheory);
        assert_eq!(corpus_case(0).1, Expectation::InTheory);
    }

    #[test]
    fn corpus_stream_is_deterministic() {
        for seed in 0..12 {
            assert_eq!(corpus_case(seed).0, corpus_case(seed).0);
        }
    }
}
