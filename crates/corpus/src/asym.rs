//! Seeded asymmetric-choice probes: live safe STGs just *beyond* the
//! free-choice class.
//!
//! Wimmel's asymmetric-choice class (every two conflicting places have
//! nested successor sets) is the first structural tier outside the
//! free-choice theory the paper's comparators assume. The probe family here
//! places a free choice directly after a fork/join: the DSL then gives each
//! parallel exit its own choice place, and every branch head consumes *all*
//! of them — branch heads get fan-in > 1 while the choice places keep
//! fan-out > 1. The conflicting places have identical successor sets
//! (trivially nested), so the net is asymmetric-choice but not free-choice,
//! while the DSL's cycle construction keeps it 1-safe, live and consistent.
//!
//! These probes exist to be *rejected, typed*: the corpus pipeline asserts
//! that every theory-scoped method maps them to
//! [`modsyn::SynthesisError::NotFreeChoice`]-style errors — no panics, no
//! silent wrong answers (see [`crate::reject`]).

use modsyn_check::rng::SplitMix64;
use modsyn_petri::NetClass;
use modsyn_stg::{Frag, SignalKind, Stg, StgBuilder};

/// A reproducible asymmetric-choice probe description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsymRecipe {
    /// The seed the probe was drawn from.
    pub seed: u64,
    /// Parallel branches feeding the choice (2–3): the choice entry's
    /// fan-in width, and each branch head's fan-in.
    pub width: usize,
    /// Choice alternatives (2–3), each headed by a distinct input.
    pub branches: usize,
}

impl AsymRecipe {
    /// Compiles the probe into an STG named `asym-<seed>`.
    ///
    /// Layout: `d+ ; (w0± ∥ … ∥ w<width>±) ; [ ck+ bk± ck- ]k ; d-` — a
    /// done-signal rise forks `width` worker output pulses, then an
    /// input-led choice over `branches` alternatives, closed by the done
    /// fall. The choice-after-par seam is what pushes the net beyond free
    /// choice: each worker exit gets its own choice place, and every
    /// branch head consumes all of them.
    pub fn build(&self) -> Stg {
        let mut b = StgBuilder::new(format!("asym-{}", self.seed));
        let pulse = |b: &mut StgBuilder, name: String| {
            let s = b.signal(name, SignalKind::Output).expect("unique names");
            Frag::seq([Frag::rise(s), Frag::fall(s)])
        };
        let done = b
            .signal("d".to_string(), SignalKind::Output)
            .expect("unique names");
        let workers: Vec<Frag> = (0..self.width)
            .map(|k| pulse(&mut b, format!("w{k}")))
            .collect();
        let alternatives: Vec<Frag> = (0..self.branches)
            .map(|k| {
                let head = b
                    .signal(format!("c{k}"), SignalKind::Input)
                    .expect("unique names");
                let body = pulse(&mut b, format!("b{k}"));
                Frag::seq([Frag::rise(head), body, Frag::fall(head)])
            })
            .collect();
        b.cycle(Frag::seq([
            Frag::rise(done),
            Frag::par(workers),
            Frag::choice(alternatives),
            Frag::fall(done),
        ]))
        .expect("probe bodies are single-exit")
    }

    /// Smaller probes (fewer branches, then narrower fork), for failure
    /// minimisation. The minimum — width 2, branches 2 — is the smallest
    /// shape that is still beyond free choice.
    pub fn shrink(&self) -> Vec<AsymRecipe> {
        let mut out = Vec::new();
        if self.branches > 2 {
            out.push(AsymRecipe {
                branches: self.branches - 1,
                ..*self
            });
        }
        if self.width > 2 {
            out.push(AsymRecipe {
                width: self.width - 1,
                ..*self
            });
        }
        out
    }
}

/// Draws an asymmetric-choice probe for `seed`. Deterministic; every
/// drawn probe classifies strictly beyond [`NetClass::FreeChoice`].
pub fn gen_asym(seed: u64) -> AsymRecipe {
    let mut rng = SplitMix64::new(seed ^ 0xa5_11);
    AsymRecipe {
        seed,
        width: 2 + rng.below(2),
        branches: 2 + rng.below(2),
    }
}

/// `true` when `stg` sits exactly in the asymmetric-choice tier — beyond
/// free choice, but with only one-sided confusion.
pub fn is_asymmetric_choice(stg: &Stg) -> bool {
    stg.net().classify() == NetClass::AsymmetricChoice
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;
    use modsyn_sg::{derive, DeriveOptions};

    #[test]
    fn probes_are_asymmetric_choice_live_and_safe() {
        for seed in 0..25 {
            let stg = gen_asym(seed).build();
            assert!(
                is_asymmetric_choice(&stg),
                "seed {seed}: classified {}",
                stg.net().classify()
            );
            let g = stg
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.is_safe(), "seed {seed} not safe");
            assert!(g.deadlocks().is_empty(), "seed {seed} deadlocks");
        }
    }

    #[test]
    fn probes_are_consistent() {
        for seed in 0..10 {
            let stg = gen_asym(seed).build();
            let sg = derive(&stg, &DeriveOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            modsyn_check::check_consistency(&sg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_range() {
        for seed in 0..50 {
            let a = gen_asym(seed);
            assert_eq!(a, gen_asym(seed));
            assert!((2..=3).contains(&a.width));
            assert!((2..=3).contains(&a.branches));
        }
    }

    #[test]
    fn nested_choice_pairs_are_reported() {
        let report = gen_asym(3).build().net().structural_report();
        assert_eq!(report.class, NetClass::AsymmetricChoice);
        assert!(report.nested_choice_pairs >= 1);
    }

    #[test]
    fn shrinking_reaches_the_minimal_probe() {
        let mut probe = AsymRecipe {
            seed: 9,
            width: 3,
            branches: 3,
        };
        let mut steps = 0;
        while let Some(next) = probe.shrink().into_iter().next() {
            assert!(
                is_asymmetric_choice(&next.build()),
                "shrunk probe left class"
            );
            probe = next;
            steps += 1;
            assert!(steps < 10, "shrinking must terminate");
        }
        assert_eq!((probe.width, probe.branches), (2, 2));
    }
}
