//! Case evaluation: every corpus case, through every applicable method,
//! lands on exactly one of *certified*, *typed rejection*, or *violation*.
//!
//! The contract (the tentpole's "no panics, no silent wrong answers"):
//!
//! * **in-theory** cases (composed free-choice corpus) must be
//!   oracle-certified by the paper's modular flow; the restricted
//!   comparators may alternatively hit a *capacity* rejection (the same
//!   abort classes Table 1 reports for them), never a class rejection;
//! * **beyond-theory** cases (asymmetric-choice probes) must draw a *class*
//!   rejection from the theory-scoped Lavagno flow; the modular flow may
//!   either reject (typed) or succeed — but a success is only accepted
//!   when the independent oracle certifies it;
//! * anything else — a panic, an untyped failure, an oracle-refuted
//!   result, a `.g` round-trip mismatch — is a **violation** and fails the
//!   whole corpus run.
//!
//! Everything counted here is deterministic (seeded generation, a
//! deterministic solver), so aggregate counts are exact-comparable against
//! a committed baseline; only wall clocks are informational.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use modsyn::{certify_report, synthesize, Engine, Method, SynthesisOptions};
use modsyn_petri::NetClass;
use modsyn_sat::SolverOptions;
use modsyn_sg::{derive, StateGraph};
use modsyn_stg::{parse_g, write_g, Stg};

use crate::reject::Rejection;

/// What the corpus expects of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// A composed free-choice case: the modular flow must certify.
    InTheory,
    /// An asymmetric-choice probe: theory-scoped methods must reject,
    /// typed.
    BeyondTheory,
}

impl Expectation {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Expectation::InTheory => "in-theory",
            Expectation::BeyondTheory => "beyond-theory",
        }
    }
}

/// One method's verdict on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Synthesis succeeded and the independent oracle certified the result.
    Certified,
    /// The method declined with a typed rejection.
    Rejected(Rejection),
    /// The contract was broken; the message says how.
    Violation(String),
}

/// One method's evaluation record.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// The method evaluated.
    pub method: Method,
    /// Its verdict.
    pub verdict: Verdict,
    /// Literal count of the certified result (0 otherwise) — deterministic.
    pub literals: usize,
    /// Final signal count of the certified result (0 otherwise).
    pub final_signals: usize,
    /// Wall clock, informational only.
    pub wall_s: f64,
}

/// Full evaluation record of one corpus case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case's model name.
    pub name: String,
    /// What was expected of it.
    pub expectation: Expectation,
    /// Structural class the classifier assigned.
    pub class: NetClass,
    /// STG signals.
    pub signals: usize,
    /// Net places.
    pub places: usize,
    /// Net transitions.
    pub transitions: usize,
    /// Reachable states of the specification graph (0 if derivation was
    /// itself the rejection).
    pub states: usize,
    /// Per-method verdicts, in evaluation order.
    pub outcomes: Vec<MethodOutcome>,
    /// Case-level violations (round-trip, class expectation, derivation).
    pub violations: Vec<String>,
}

impl CaseReport {
    /// `true` when no method and no case-level check violated the
    /// contract.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
            && self
                .outcomes
                .iter()
                .all(|o| !matches!(o.verdict, Verdict::Violation(_)))
    }
}

/// Evaluation limits.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// SAT backtrack limit for the paper's modular flow (the Table-1
    /// abort budget — modular must certify every in-theory case under it).
    pub backtrack_limit: u64,
    /// SAT backtrack limit for the restricted comparators (direct,
    /// Lavagno). Much smaller: on corpus scale a comparator that is going
    /// to abort should abort cheaply, and the typed capacity rejection it
    /// produces is the measurement, not a failure.
    pub comparator_backtrack_limit: u64,
    /// Run the direct (no decomposition) method only on cases whose
    /// specification has at most this many states — the direct flow is the
    /// paper's known scale casualty, and the corpus is measured per tier,
    /// not by drowning one method.
    pub direct_state_cap: usize,
    /// Check observation equivalence against the specification only below
    /// this state count (consistency, CSC and speed-independence are always
    /// checked).
    pub equivalence_state_cap: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            backtrack_limit: 40_000,
            comparator_backtrack_limit: 1_500,
            direct_state_cap: 600,
            equivalence_state_cap: 2_000,
        }
    }
}

fn method_options(method: Method, eval: &EvalOptions) -> SynthesisOptions {
    let mut options = SynthesisOptions::for_method(method);
    let budget = match method {
        Method::Modular | Method::ModularMinArea => eval.backtrack_limit,
        Method::Direct | Method::Lavagno => eval.comparator_backtrack_limit,
    };
    options.solver = SolverOptions {
        max_backtracks: Some(budget),
        ..SolverOptions::default()
    };
    // The certified pools were pre-screened with the classic engine, and
    // in-theory-ness is model-path-dependent: the modular flow feeds each
    // module's satisfying model into the next module's formula, so a
    // different engine's (equally correct) first model can steer a
    // pre-screened composition into an insertion path with no solution
    // under the case budgets. The corpus therefore pins the engine the
    // pools were certified with; the engine matrix is exercised by
    // `differ` (benchmark + corpus legs) and the cnc/sat_props suites.
    options.engine = Engine::Dpll;
    options
}

/// Runs `method` on `stg`, certifying successes against the oracle.
/// Panics are caught and surface as violations, never as crashes.
fn run_method(stg: &Stg, spec: &StateGraph, method: Method, eval: &EvalOptions) -> MethodOutcome {
    let options = method_options(method, eval);
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| synthesize(stg, &options)));
    let wall_s = started.elapsed().as_secs_f64();
    let (verdict, literals, final_signals) = match result {
        Err(_) => (Verdict::Violation("panicked".to_string()), 0, 0),
        Ok(Err(e)) => (Verdict::Rejected(Rejection::of(&e)), 0, 0),
        Ok(Ok(report)) => {
            let spec_for_equiv = (spec.state_count() <= eval.equivalence_state_cap).then_some(spec);
            match certify_report(spec_for_equiv, &report) {
                Ok(()) => (Verdict::Certified, report.literals, report.final_signals),
                Err(e) => (
                    Verdict::Violation(format!("oracle refused the result: {e}")),
                    0,
                    0,
                ),
            }
        }
    };
    MethodOutcome {
        method,
        verdict,
        literals,
        final_signals,
        wall_s,
    }
}

/// Tightens a raw verdict to the expectation's contract.
fn enforce(outcome: MethodOutcome, expectation: Expectation) -> MethodOutcome {
    let method = outcome.method;
    let verdict = match (&outcome.verdict, expectation) {
        (Verdict::Rejected(r), Expectation::InTheory) if method == Method::Modular => {
            Verdict::Violation(format!(
                "modular must certify every in-theory case, drew {r}"
            ))
        }
        (Verdict::Rejected(r), Expectation::InTheory) if !r.is_capacity() => Verdict::Violation(
            format!("in-theory case drew a non-capacity rejection from {method}: {r}"),
        ),
        (Verdict::Rejected(r), Expectation::BeyondTheory)
            if method == Method::Lavagno && !r.is_class() =>
        {
            Verdict::Violation(format!(
                "beyond-theory probe drew {r} from {method}, expected not-free-choice"
            ))
        }
        (Verdict::Certified, Expectation::BeyondTheory) if method == Method::Lavagno => {
            Verdict::Violation("theory-scoped method accepted a beyond-theory probe".to_string())
        }
        _ => outcome.verdict.clone(),
    };
    MethodOutcome { verdict, ..outcome }
}

/// Evaluates one corpus case against every applicable method plus the
/// case-level invariants (`.g` round-trip fixpoint, class expectation).
pub fn evaluate_case(stg: &Stg, expectation: Expectation, eval: &EvalOptions) -> CaseReport {
    let mut violations = Vec::new();

    // `.g` round-trip must be a fixpoint on every corpus net.
    let rendered = write_g(stg);
    match parse_g(&rendered) {
        Ok(reparsed) => {
            if write_g(&reparsed) != rendered {
                violations.push("write_g round-trip is not a fixpoint".to_string());
            }
        }
        Err(e) => violations.push(format!("write_g output does not re-parse: {e}")),
    }

    let class = stg.net().classify();
    match expectation {
        Expectation::InTheory if class > NetClass::FreeChoice => {
            violations.push(format!("in-theory case classified {class}"));
        }
        Expectation::BeyondTheory if class <= NetClass::FreeChoice => {
            violations.push(format!("beyond-theory probe classified {class}"));
        }
        _ => {}
    }

    let (places, transitions) = (stg.net().place_count(), stg.net().transition_count());

    let spec = match derive(stg, &method_options(Method::Modular, eval).derive) {
        Ok(spec) => spec,
        Err(e) => {
            violations.push(format!("specification derivation failed: {e}"));
            return CaseReport {
                name: stg.name().to_string(),
                expectation,
                class,
                signals: stg.signal_count(),
                places,
                transitions,
                states: 0,
                outcomes: Vec::new(),
                violations,
            };
        }
    };

    let mut methods = vec![Method::Modular];
    if expectation == Expectation::InTheory && spec.state_count() <= eval.direct_state_cap {
        methods.push(Method::Direct);
    }
    methods.push(Method::Lavagno);

    let outcomes = methods
        .into_iter()
        .map(|m| enforce(run_method(stg, &spec, m, eval), expectation))
        .collect();

    CaseReport {
        name: stg.name().to_string(),
        expectation,
        class,
        signals: stg.signal_count(),
        places,
        transitions,
        states: spec.state_count(),
        outcomes,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asym::gen_asym;
    use crate::compose::gen_corpus;

    #[test]
    fn in_theory_cases_certify_modular() {
        // A cheap spread over the recipe shapes (leaf, articulation,
        // synchronous product); the full sweep lives in the release-mode
        // corpus run and the `tests` crate.
        for seed in [18u64, 34, 26, 25, 21] {
            let (stg, _) = gen_corpus(seed).build();
            let report = evaluate_case(&stg, Expectation::InTheory, &EvalOptions::default());
            assert!(report.ok(), "seed {seed}: {report:?}");
            let modular = report
                .outcomes
                .iter()
                .find(|o| o.method == Method::Modular)
                .expect("modular always runs");
            assert_eq!(modular.verdict, Verdict::Certified, "seed {seed}");
        }
    }

    #[test]
    fn beyond_theory_probes_draw_typed_class_rejections() {
        for seed in 0..6 {
            let stg = gen_asym(seed).build();
            let report = evaluate_case(&stg, Expectation::BeyondTheory, &EvalOptions::default());
            assert!(report.ok(), "seed {seed}: {report:?}");
            let lavagno = report
                .outcomes
                .iter()
                .find(|o| o.method == Method::Lavagno)
                .expect("lavagno always runs");
            assert_eq!(
                lavagno.verdict,
                Verdict::Rejected(Rejection::BeyondFreeChoice),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn misdeclared_expectation_is_a_violation() {
        let stg = gen_asym(0).build();
        let report = evaluate_case(&stg, Expectation::InTheory, &EvalOptions::default());
        assert!(!report.ok());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("classified asymmetric choice")));
    }

    #[test]
    fn certified_outcomes_carry_literals() {
        let (stg, _) = gen_corpus(18).build();
        let report = evaluate_case(&stg, Expectation::InTheory, &EvalOptions::default());
        for o in &report.outcomes {
            if o.verdict == Verdict::Certified {
                assert!(o.literals > 0, "{}", o.method);
                assert!(o.final_signals >= stg.signal_count(), "{}", o.method);
            }
        }
    }
}
