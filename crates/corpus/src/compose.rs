//! The composition engine: growing large STGs from small certified leaves.
//!
//! Following Devillers' composition results, two structure-level operators
//! build big nets whose behavioural properties are inherited from the
//! leaves rather than re-proved from scratch:
//!
//! * **Articulation** — sequential glue: the leaves' cycle bodies run one
//!   after another, each wrapped in the rise/fall of a fresh *articulation
//!   output*. The articulation transitions are cut vertices of the composed
//!   net: every path between two leaves passes through them, so liveness,
//!   1-safety, consistency and the structural class of each leaf carry
//!   over; the seams are *output-separated* (fresh output edges between any
//!   two leaf events), keeping CSC conflicts within the insertion-solvable
//!   class, and the wrapping signal doubles as a phase bit that already
//!   distinguishes the leaves' state-code ranges.
//! * **Synchronous product** — the rendezvous form: the leaves' bodies run
//!   concurrently (fork from the articulation point) and a fresh *sync
//!   output* pulse joins all of them, the shared synchronisation event of
//!   the product. The join transition is a plain marked-graph join
//!   (singleton-fanout places), so free-choiceness is preserved.
//!
//! Each composed case carries a [`Certificate`] recording its derivation
//! and the claimed properties; [`check_certificate`] spot-checks the claims
//! against reachability, the structural classifier and the
//! `modsyn-check` consistency oracle — the engine never asks anyone to
//! trust the construction blindly.

use modsyn_check::rng::SplitMix64;
use modsyn_check::{gen_recipe, Profile, StgRecipe};
use modsyn_petri::{NetClass, ReachabilityOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::{Frag, SignalId, SignalKind, Stg, StgBuilder, StgError};

use crate::skeleton::Skeleton;

/// A corpus leaf: a generated recipe or a program-skeleton template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unit {
    /// A seeded free-choice recipe from the `modsyn-check` grammar.
    Gen(StgRecipe),
    /// A concurrent-program handshake template.
    Skel(Skeleton),
}

impl Unit {
    /// Leaf name for derivation strings.
    pub fn name(&self) -> String {
        match self {
            Unit::Gen(r) => format!("gen-{}/{}p", r.seed, r.phases.len()),
            Unit::Skel(s) => format!("skel-{}", s.name()),
        }
    }

    /// The tightest structural class the leaf is guaranteed to stay within.
    fn class_bound(&self) -> NetClass {
        match self {
            // The gen grammar and the mutex template draw free choices;
            // everything else is choice-free. FreeChoice is a safe upper
            // bound for all of them (the classifier may report lower).
            Unit::Gen(_) => NetClass::FreeChoice,
            Unit::Skel(Skeleton::MutexPair) => NetClass::FreeChoice,
            Unit::Skel(_) => NetClass::MarkedGraph,
        }
    }

    fn declare(&self, b: &mut StgBuilder, prefix: &str) -> Result<Vec<SignalId>, StgError> {
        match self {
            Unit::Gen(r) => r.declare_signals(b, prefix),
            Unit::Skel(s) => s.declare_signals(b, prefix),
        }
    }

    fn body(&self, ids: &[SignalId]) -> Frag {
        match self {
            Unit::Gen(r) => r.body(ids),
            Unit::Skel(s) => s.body(ids),
        }
    }
}

/// A composition tree over corpus leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusNode {
    /// A single leaf.
    Unit(Unit),
    /// Sequential articulation of the children (≥ 2), glued by fresh
    /// articulation-output pulses.
    Articulate(Vec<CorpusNode>),
    /// Synchronous product of the children (≥ 2): concurrent bodies joined
    /// by a fresh sync-output pulse.
    Sync(Vec<CorpusNode>),
}

impl CorpusNode {
    /// Number of leaves in the tree.
    pub fn leaves(&self) -> usize {
        match self {
            CorpusNode::Unit(_) => 1,
            CorpusNode::Articulate(cs) | CorpusNode::Sync(cs) => {
                cs.iter().map(CorpusNode::leaves).sum()
            }
        }
    }

    /// Human-readable derivation, e.g. `art(gen-3/2p,sync(skel-chan,gen-9/1p))`.
    pub fn derivation(&self) -> String {
        match self {
            CorpusNode::Unit(u) => u.name(),
            CorpusNode::Articulate(cs) => {
                let inner: Vec<String> = cs.iter().map(CorpusNode::derivation).collect();
                format!("art({})", inner.join(","))
            }
            CorpusNode::Sync(cs) => {
                let inner: Vec<String> = cs.iter().map(CorpusNode::derivation).collect();
                format!("sync({})", inner.join(","))
            }
        }
    }

    /// The claimed class bound: composition preserves the maximum of the
    /// leaf bounds (both operators add only marked-graph structure).
    pub fn class_bound(&self) -> NetClass {
        match self {
            CorpusNode::Unit(u) => u.class_bound(),
            CorpusNode::Articulate(cs) | CorpusNode::Sync(cs) => cs
                .iter()
                .map(CorpusNode::class_bound)
                .max()
                .unwrap_or(NetClass::MarkedGraph),
        }
    }

    fn compile(
        &self,
        b: &mut StgBuilder,
        leaf: &mut usize,
        glue: &mut usize,
    ) -> Result<Frag, StgError> {
        match self {
            CorpusNode::Unit(u) => {
                let prefix = format!("m{leaf}_");
                *leaf += 1;
                let ids = u.declare(b, &prefix)?;
                Ok(u.body(&ids))
            }
            CorpusNode::Articulate(children) => {
                // g0+ ; child0 ; g0- ; g1+ ; child1 ; g1- ; … — each child
                // runs inside its articulation output's rise/fall, so the
                // glue transitions are the cut vertices between leaves AND
                // the glue signal is a free phase bit: wrapping (instead of
                // a bare `g+ g-` pulse between leaves) adds no equal-code
                // state pair of its own, keeping insertion costs at the
                // leaves' standalone level.
                let mut frags = Vec::new();
                for child in children {
                    let g = b.signal(format!("g{glue}"), SignalKind::Output)?;
                    *glue += 1;
                    frags.push(Frag::seq([
                        Frag::rise(g),
                        child.compile(b, leaf, glue)?,
                        Frag::fall(g),
                    ]));
                }
                Ok(Frag::seq(frags))
            }
            CorpusNode::Sync(children) => {
                let bodies = children
                    .iter()
                    .map(|c| c.compile(b, leaf, glue))
                    .collect::<Result<Vec<_>, _>>()?;
                // The sync output wraps the product: its rise is the
                // rendezvous entry (a proper transition-level fork, even
                // when the product opens the cycle) and its fall joins
                // every branch exit — the shared event all components
                // agree on.
                let s = b.signal(format!("g{glue}"), SignalKind::Output)?;
                *glue += 1;
                Ok(Frag::seq([Frag::rise(s), Frag::par(bodies), Frag::fall(s)]))
            }
        }
    }
}

/// A reproducible composed-corpus case description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusRecipe {
    /// The seed the recipe was drawn from (shrunk recipes inherit it).
    pub seed: u64,
    /// The composition tree.
    pub node: CorpusNode,
}

/// Structure-level proof sketch attached to every composed case: what was
/// composed, and which properties the construction guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The derivation string ([`CorpusNode::derivation`]).
    pub derivation: String,
    /// Number of leaves composed.
    pub leaves: usize,
    /// Claimed upper bound on the structural class.
    pub class_bound: NetClass,
    /// Claimed: every reachable marking is 1-safe.
    pub safe: bool,
    /// Claimed: the reachability graph has no deadlock.
    pub live: bool,
}

impl CorpusRecipe {
    /// Compiles the recipe into an STG named `corpus-<seed>` plus its
    /// certificate.
    ///
    /// # Panics
    ///
    /// Panics if the tree is malformed (duplicate signal prefixes cannot
    /// occur for trees built by [`gen_corpus`] or [`CorpusRecipe::shrink`]).
    pub fn build(&self) -> (Stg, Certificate) {
        let mut b = StgBuilder::new(format!("corpus-{}", self.seed));
        let (mut leaf, mut glue) = (0usize, 0usize);
        let body = self
            .node
            .compile(&mut b, &mut leaf, &mut glue)
            .expect("leaf prefixes and glue names are unique");
        let stg = b.cycle(body).expect("composition emits single-exit bodies");
        let certificate = Certificate {
            derivation: self.node.derivation(),
            leaves: self.node.leaves(),
            class_bound: self.node.class_bound(),
            safe: true,
            live: true,
        };
        (stg, certificate)
    }

    /// One-step-smaller recipes for failure minimisation: drop a child of
    /// a composition (or collapse a binary composition to either child),
    /// or shrink one generated leaf by a phase.
    pub fn shrink(&self) -> Vec<CorpusRecipe> {
        shrink_node(&self.node)
            .into_iter()
            .map(|node| CorpusRecipe {
                seed: self.seed,
                node,
            })
            .collect()
    }
}

fn shrink_node(node: &CorpusNode) -> Vec<CorpusNode> {
    match node {
        CorpusNode::Unit(Unit::Gen(r)) => r
            .shrink()
            .into_iter()
            .map(|r| CorpusNode::Unit(Unit::Gen(r)))
            .collect(),
        CorpusNode::Unit(Unit::Skel(_)) => Vec::new(),
        CorpusNode::Articulate(cs) | CorpusNode::Sync(cs) => {
            let rebuild = |children: Vec<CorpusNode>| match node {
                CorpusNode::Articulate(_) => CorpusNode::Articulate(children),
                _ => CorpusNode::Sync(children),
            };
            let mut out = Vec::new();
            if cs.len() > 2 {
                // Drop one child, keeping the operator.
                for drop in 0..cs.len() {
                    let mut children = cs.clone();
                    children.remove(drop);
                    out.push(rebuild(children));
                }
            } else {
                // Collapse to either child.
                out.extend(cs.iter().cloned());
            }
            // Shrink one child in place.
            for (i, c) in cs.iter().enumerate() {
                for s in shrink_node(c) {
                    let mut children = cs.clone();
                    children[i] = s;
                    out.push(rebuild(children));
                }
            }
            out
        }
    }
}

/// Violation found by [`check_certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateViolation(pub String);

impl std::fmt::Display for CertificateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certificate violated: {}", self.0)
    }
}

/// Spot-checks a certificate's claims against the built net: 1-safety and
/// deadlock freedom over the full reachability graph, the structural class
/// bound, and STG consistency via the independent oracle. Returns the
/// reachable state count on success.
///
/// # Errors
///
/// The first claim the net falsifies, as a [`CertificateViolation`].
pub fn check_certificate(
    stg: &Stg,
    certificate: &Certificate,
) -> Result<usize, CertificateViolation> {
    let graph = stg
        .net()
        .reachability(&ReachabilityOptions::default())
        .map_err(|e| CertificateViolation(format!("reachability failed: {e}")))?;
    if certificate.safe && !graph.is_safe() {
        return Err(CertificateViolation("claimed 1-safe, is not".into()));
    }
    if certificate.live && !graph.deadlocks().is_empty() {
        return Err(CertificateViolation(format!(
            "claimed deadlock-free, found {} deadlocks",
            graph.deadlocks().len()
        )));
    }
    let class = stg.net().classify();
    if class > certificate.class_bound {
        return Err(CertificateViolation(format!(
            "claimed class ≤ {}, classified {class}",
            certificate.class_bound
        )));
    }
    let sg = derive(stg, &DeriveOptions::default())
        .map_err(|e| CertificateViolation(format!("derivation failed: {e}")))?;
    modsyn_check::check_consistency(&sg)
        .map_err(|e| CertificateViolation(format!("inconsistent: {e}")))?;
    Ok(sg.state_count())
}

/// Gen-stream sub-seeds (small profile) whose recipes the modular flow
/// certifies within the Table-1 budgets.
///
/// "In-theory" for the corpus means more than live safe free-choice: the
/// modular flow must actually *certify* the case, so the leaves themselves
/// have to be CSC-insertion-solvable. The raw gen stream is not — roughly
/// one recipe in ten packs so many equal-code pairs into so few states
/// that resolution needs more insertion signals than the cap (or a search
/// past the Table-1 backtrack budget). These pools are the *certified
/// seeds* the composition grows from: scanned once with the full
/// evaluate/certify pipeline (`examples/certify_pool.rs`), and
/// re-certified continuously because every corpus run re-evaluates each
/// entry it draws and fails on any regression.
const CERTIFIED_SMALL_SEEDS: [u64; 64] = [
    1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 28,
    29, 30, 32, 33, 34, 35, 36, 37, 38, 40, 41, 42, 43, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55,
    56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 66, 68, 69, 70, 72,
];

/// Gen-stream sub-seeds (medium profile) certified like
/// [`CERTIFIED_SMALL_SEEDS`].
const CERTIFIED_MEDIUM_SEEDS: [u64; 32] = [
    1, 2, 3, 4, 6, 7, 10, 11, 12, 13, 15, 16, 17, 19, 20, 21, 22, 24, 25, 26, 27, 28, 33, 34, 35,
    36, 37, 39, 40, 41, 42, 44,
];

/// Ordered skeleton pairs whose synchronous product the modular flow
/// certifies cheaply. Products involving [`Skeleton::ForkJoin`] stack the
/// template's own concurrency diamond on the product's and exhaust the
/// insertion signal cap, and `(pipe4, pipe2)` — though `(pipe2, pipe4)`
/// solves — falls over to heuristic ordering; both are excluded, as are
/// the certifiable-but-slow deep-pipeline squares that would dominate a
/// thousand-case run's wall clock.
const CERTIFIED_SYNC_PAIRS: [(Skeleton, Skeleton); 16] = [
    (Skeleton::Channel, Skeleton::Channel),
    (Skeleton::Channel, Skeleton::Pipeline(2)),
    (Skeleton::Channel, Skeleton::Pipeline(3)),
    (Skeleton::Channel, Skeleton::Pipeline(4)),
    (Skeleton::Channel, Skeleton::MutexPair),
    (Skeleton::Pipeline(2), Skeleton::Channel),
    (Skeleton::Pipeline(2), Skeleton::Pipeline(2)),
    (Skeleton::Pipeline(2), Skeleton::Pipeline(3)),
    (Skeleton::Pipeline(2), Skeleton::MutexPair),
    (Skeleton::Pipeline(3), Skeleton::Channel),
    (Skeleton::Pipeline(3), Skeleton::Pipeline(2)),
    (Skeleton::Pipeline(3), Skeleton::MutexPair),
    (Skeleton::Pipeline(4), Skeleton::Channel),
    (Skeleton::MutexPair, Skeleton::Channel),
    (Skeleton::MutexPair, Skeleton::Pipeline(2)),
    (Skeleton::MutexPair, Skeleton::MutexPair),
];

/// The subset of [`CERTIFIED_SYNC_PAIRS`] that also certifies when the
/// product is *articulated with a further leaf*. `sync(pipe2,mutex)` and
/// `sync(pipe3,mutex)` certify standalone but fail inside every
/// articulation (the projection obstruction again: the neighbour leaf's
/// window projects to ε in the product's modules, stranding the mutex
/// choice's equal-code pairs) — the mirrored `sync(mutex,pipeN)` orders
/// are fine, so those stay.
const ARTICULABLE_SYNC_PAIRS: [(Skeleton, Skeleton); 14] = [
    (Skeleton::Channel, Skeleton::Channel),
    (Skeleton::Channel, Skeleton::Pipeline(2)),
    (Skeleton::Channel, Skeleton::Pipeline(3)),
    (Skeleton::Channel, Skeleton::Pipeline(4)),
    (Skeleton::Channel, Skeleton::MutexPair),
    (Skeleton::Pipeline(2), Skeleton::Channel),
    (Skeleton::Pipeline(2), Skeleton::Pipeline(2)),
    (Skeleton::Pipeline(2), Skeleton::Pipeline(3)),
    (Skeleton::Pipeline(3), Skeleton::Channel),
    (Skeleton::Pipeline(3), Skeleton::Pipeline(2)),
    (Skeleton::Pipeline(4), Skeleton::Channel),
    (Skeleton::MutexPair, Skeleton::Channel),
    (Skeleton::MutexPair, Skeleton::Pipeline(2)),
    (Skeleton::MutexPair, Skeleton::MutexPair),
];

/// Draws a composed in-theory corpus recipe for `seed`. Deterministic.
///
/// The shape distribution keeps cases cheap enough for thousand-case runs:
/// about a quarter are single leaves, half are articulations of 2–4 units,
/// and the rest are synchronous products of two certified skeleton pairs
/// (sometimes articulated with a third unit).
pub fn gen_corpus(seed: u64) -> CorpusRecipe {
    // Offset the stream so leaf sub-seeds differ from the raw gen_stg
    // stream at the same seed.
    let mut rng = SplitMix64::new(seed ^ 0xc0_95);
    let node = match rng.below(100) {
        0..=24 => CorpusNode::Unit(draw_unit(&mut rng, false)),
        25..=69 => {
            // 2–3 units, all drawn small. Medium recipes certify standalone
            // but can fail *inside* articulations: the other leaves' windows
            // project to ε in their per-output modules, which leaves the
            // medium leaf's denser conflict structure with in-module
            // equal-code pairs that only inputs separate (seed 0's
            // art(gen-4 medium,…) draws no-solution at any budget while the
            // all-small variant solves). Small leaves keep composed cases
            // inside modular's insertion budget.
            let n = 2 + rng.below(2);
            CorpusNode::Articulate(
                (0..n)
                    .map(|_| CorpusNode::Unit(draw_unit(&mut rng, true)))
                    .collect(),
            )
        }
        70..=89 => draw_sync(&mut rng, &CERTIFIED_SYNC_PAIRS),
        _ => CorpusNode::Articulate(vec![
            draw_sync(&mut rng, &ARTICULABLE_SYNC_PAIRS),
            CorpusNode::Unit(draw_unit(&mut rng, true)),
        ]),
    };
    CorpusRecipe { seed, node }
}

/// Draws one leaf. `small` restricts generated recipes to the small
/// profile, keeping composed signal counts in the milliseconds-per-case
/// range. Generated leaves draw their sub-seeds from the certified pools.
fn draw_unit(rng: &mut SplitMix64, small: bool) -> Unit {
    if rng.below(100) < 55 {
        let (pool, profile): (&[u64], Profile) = if small || rng.below(100) < 60 {
            (&CERTIFIED_SMALL_SEEDS, Profile::Small)
        } else {
            (&CERTIFIED_MEDIUM_SEEDS, Profile::Medium)
        };
        let sub_seed = pool[rng.below(pool.len())];
        Unit::Gen(gen_recipe(sub_seed, profile))
    } else {
        Unit::Skel(draw_skel(rng))
    }
}

/// Draws a skeleton template (any of the four families).
fn draw_skel(rng: &mut SplitMix64) -> Skeleton {
    match rng.below(6) {
        0 => Skeleton::Channel,
        1 => Skeleton::Pipeline(2 + rng.below(3) as u8),
        2 => Skeleton::MutexPair,
        3 => Skeleton::ForkJoin(2 + rng.below(2) as u8),
        4 => Skeleton::Pipeline(2),
        _ => Skeleton::Channel,
    }
}

/// Draws a synchronous product over one of the given certified ordered
/// skeleton pairs.
fn draw_sync(rng: &mut SplitMix64, pairs: &[(Skeleton, Skeleton)]) -> CorpusNode {
    let (a, b) = pairs[rng.below(pairs.len())];
    CorpusNode::Sync(vec![
        CorpusNode::Unit(Unit::Skel(a)),
        CorpusNode::Unit(Unit::Skel(b)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(gen_corpus(seed), gen_corpus(seed));
            let (a, _) = gen_corpus(seed).build();
            let (b, _) = gen_corpus(seed).build();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn certificates_hold_over_a_seed_sweep() {
        for seed in 0..40 {
            let recipe = gen_corpus(seed);
            let (stg, cert) = recipe.build();
            let states = check_certificate(&stg, &cert)
                .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", cert.derivation));
            assert!(states >= 2, "seed {seed}");
            assert!(cert.class_bound <= NetClass::FreeChoice, "seed {seed}");
        }
    }

    #[test]
    fn articulation_concatenates_and_stays_certified() {
        let recipe = CorpusRecipe {
            seed: 7,
            node: CorpusNode::Articulate(vec![
                CorpusNode::Unit(Unit::Skel(Skeleton::Channel)),
                CorpusNode::Unit(Unit::Skel(Skeleton::MutexPair)),
            ]),
        };
        let (stg, cert) = recipe.build();
        assert_eq!(cert.derivation, "art(skel-chan,skel-mutex)");
        assert_eq!(cert.leaves, 2);
        // 1 + 4 leaf signals + 2 glue outputs.
        assert_eq!(stg.signal_count(), 8);
        check_certificate(&stg, &cert).unwrap();
    }

    #[test]
    fn sync_product_multiplies_states() {
        let single = CorpusRecipe {
            seed: 1,
            node: CorpusNode::Unit(Unit::Skel(Skeleton::ForkJoin(2))),
        };
        let product = CorpusRecipe {
            seed: 1,
            node: CorpusNode::Sync(vec![
                CorpusNode::Unit(Unit::Skel(Skeleton::ForkJoin(2))),
                CorpusNode::Unit(Unit::Skel(Skeleton::ForkJoin(2))),
            ]),
        };
        let (s, sc) = single.build();
        let (p, pc) = product.build();
        let single_states = check_certificate(&s, &sc).unwrap();
        let product_states = check_certificate(&p, &pc).unwrap();
        assert!(
            product_states > 2 * single_states,
            "{product_states} vs {single_states}: expected product blow-up"
        );
    }

    #[test]
    fn shrinking_reduces_leaf_or_phase_count() {
        let recipe = gen_corpus(13);
        let weight = |r: &CorpusRecipe| {
            fn phases(n: &CorpusNode) -> usize {
                match n {
                    CorpusNode::Unit(Unit::Gen(r)) => 1 + r.phases.len(),
                    CorpusNode::Unit(Unit::Skel(_)) => 1,
                    CorpusNode::Articulate(cs) | CorpusNode::Sync(cs) => {
                        cs.iter().map(phases).sum()
                    }
                }
            }
            phases(&r.node)
        };
        for s in recipe.shrink() {
            assert!(weight(&s) < weight(&recipe), "shrink did not reduce");
            assert_eq!(s.seed, recipe.seed);
            let (stg, cert) = s.build();
            check_certificate(&stg, &cert).unwrap();
        }
    }

    #[test]
    fn leaf_namespaces_do_not_collide() {
        // Two identical leaves compose fine: prefixes keep names apart.
        let recipe = CorpusRecipe {
            seed: 2,
            node: CorpusNode::Sync(vec![
                CorpusNode::Unit(Unit::Skel(Skeleton::Channel)),
                CorpusNode::Unit(Unit::Skel(Skeleton::Channel)),
            ]),
        };
        let (stg, cert) = recipe.build();
        check_certificate(&stg, &cert).unwrap();
        assert_eq!(stg.signal_count(), 5);
    }
}
