//! Scans the gen stream and the skeleton-product space for leaves the
//! modular flow certifies, to populate the corpus crate's certified pools.
use std::time::Instant;

use modsyn::Method;
use modsyn_check::{gen_recipe, Profile};
use modsyn_corpus::{
    evaluate_case, CorpusNode, CorpusRecipe, EvalOptions, Expectation, Skeleton, Unit, Verdict,
};

fn modular_certifies(stg: &modsyn_stg::Stg) -> (bool, f64, usize) {
    let started = Instant::now();
    let report = evaluate_case(stg, Expectation::InTheory, &EvalOptions::default());
    let wall = started.elapsed().as_secs_f64();
    let ok = report.ok()
        && report
            .outcomes
            .iter()
            .any(|o| o.method == Method::Modular && o.verdict == Verdict::Certified);
    (ok, wall, report.states)
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "gen".into());
    if mode == "gen" {
        for (profile, label, want) in [
            (Profile::Small, "small", 64),
            (Profile::Medium, "medium", 32),
        ] {
            let mut accepted = Vec::new();
            let mut sub_seed = 1u64;
            while accepted.len() < want && sub_seed < 2_000 {
                let recipe = gen_recipe(sub_seed, profile);
                let stg = recipe.build();
                let (ok, wall, states) = modular_certifies(&stg);
                if ok && wall < 0.25 {
                    accepted.push(sub_seed);
                    eprintln!("  {label} {sub_seed}: ok ({states} states, {wall:.3}s)");
                }
                sub_seed += 1;
            }
            println!("{label}: {accepted:?}");
        }
    } else {
        let skels = [
            Skeleton::Channel,
            Skeleton::Pipeline(2),
            Skeleton::Pipeline(3),
            Skeleton::Pipeline(4),
            Skeleton::MutexPair,
            Skeleton::ForkJoin(2),
        ];
        for a in skels {
            for b in skels {
                let recipe = CorpusRecipe {
                    seed: 0,
                    node: CorpusNode::Sync(vec![
                        CorpusNode::Unit(Unit::Skel(a)),
                        CorpusNode::Unit(Unit::Skel(b)),
                    ]),
                };
                let (stg, _) = recipe.build();
                let (ok, wall, states) = modular_certifies(&stg);
                println!(
                    "sync({},{}): {} ({states} states, {wall:.2}s)",
                    a.name(),
                    b.name(),
                    if ok { "OK" } else { "FAIL" }
                );
            }
        }
    }
}
