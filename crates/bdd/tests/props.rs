//! Property tests (gated): enable with `--features proptest-tests` after
//! re-adding the proptest dev-dependency (needs network; see Cargo.toml).
#![cfg(feature = "proptest-tests")]
//! Property-based tests for the BDD manager.

use modsyn_bdd::{build_from_cnf, BddManager};
use modsyn_sat::{CnfFormula, Lit, Var};
use proptest::prelude::*;

fn cnf_strategy(n: usize) -> impl Strategy<Value = CnfFormula> {
    proptest::collection::vec(
        proptest::collection::vec((0..n, proptest::bool::ANY), 1..4),
        0..16,
    )
    .prop_map(move |clauses| {
        let mut f = CnfFormula::new(n);
        for clause in clauses {
            f.add_clause(
                clause
                    .into_iter()
                    .map(|(v, pol)| Lit::with_polarity(Var::new(v), pol)),
            );
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bdd_evaluation_matches_the_formula(f in cnf_strategy(6)) {
        let mut mgr = BddManager::new(6);
        let bdd = build_from_cnf(&mut mgr, &f).unwrap();
        for bits in 0u32..(1 << 6) {
            let a: Vec<bool> = (0..6).map(|v| bits >> v & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(bdd, &a), f.evaluate(&a));
        }
    }

    #[test]
    fn count_sat_matches_brute_force(f in cnf_strategy(6)) {
        let mut mgr = BddManager::new(6);
        let bdd = build_from_cnf(&mut mgr, &f).unwrap();
        let brute = (0u32..(1 << 6))
            .filter(|&bits| {
                let a: Vec<bool> = (0..6).map(|v| bits >> v & 1 == 1).collect();
                f.evaluate(&a)
            })
            .count() as u128;
        prop_assert_eq!(mgr.count_sat(bdd), brute);
    }

    #[test]
    fn any_sat_is_a_model(f in cnf_strategy(6)) {
        let mut mgr = BddManager::new(6);
        let bdd = build_from_cnf(&mut mgr, &f).unwrap();
        match mgr.any_sat(bdd) {
            Some(a) => prop_assert!(f.evaluate(&a)),
            None => prop_assert_eq!(mgr.count_sat(bdd), 0),
        }
    }

    #[test]
    fn min_cost_sat_is_optimal(
        f in cnf_strategy(5),
        costs in proptest::collection::vec((0u8..8, 0u8..8), 5..=5),
    ) {
        let costs: Vec<(f64, f64)> =
            costs.into_iter().map(|(a, b)| (a as f64, b as f64)).collect();
        let mut mgr = BddManager::new(5);
        let bdd = build_from_cnf(&mut mgr, &f).unwrap();
        let Some(got) = mgr.min_cost_sat(bdd, &costs) else {
            prop_assert_eq!(mgr.count_sat(bdd), 0);
            return Ok(());
        };
        prop_assert!(f.evaluate(&got));
        let cost = |a: &[bool]| -> f64 {
            a.iter()
                .enumerate()
                .map(|(v, &x)| if x { costs[v].1 } else { costs[v].0 })
                .sum()
        };
        let mut best = f64::INFINITY;
        for bits in 0u32..(1 << 5) {
            let a: Vec<bool> = (0..5).map(|v| bits >> v & 1 == 1).collect();
            if f.evaluate(&a) {
                best = best.min(cost(&a));
            }
        }
        prop_assert!((cost(&got) - best).abs() < 1e-9);
    }

    #[test]
    fn boolean_algebra_laws_hold(
        seed_a in 0u64..64, seed_b in 0u64..64, seed_c in 0u64..64,
    ) {
        // Build three functions from minterm masks and check distributivity
        // and De Morgan structurally (handle equality = semantic equality).
        let mut m = BddManager::new(3);
        let from_mask = |m: &mut BddManager, mask: u64| {
            let mut acc = m.zero();
            for bits in 0u32..8 {
                if mask >> bits & 1 == 1 {
                    let mut term = m.one();
                    for v in 0..3usize {
                        let lit = if bits >> v & 1 == 1 { m.var(v).unwrap() } else { m.nvar(v).unwrap() };
                        term = m.and(term, lit).unwrap();
                    }
                    acc = m.or(acc, term).unwrap();
                }
            }
            acc
        };
        let a = from_mask(&mut m, seed_a);
        let b = from_mask(&mut m, seed_b);
        let c = from_mask(&mut m, seed_c);
        // a ∧ (b ∨ c) == (a ∧ b) ∨ (a ∧ c)
        let bc = m.or(b, c).unwrap();
        let lhs = m.and(a, bc).unwrap();
        let ab = m.and(a, b).unwrap();
        let ac = m.and(a, c).unwrap();
        let rhs = m.or(ab, ac).unwrap();
        prop_assert_eq!(lhs, rhs);
        // ¬(a ∧ b) == ¬a ∨ ¬b
        let nab = m.not(ab).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let dem = m.or(na, nb).unwrap();
        prop_assert_eq!(nab, dem);
    }
}
