//! Building BDDs from CNF formulas.

use modsyn_sat::CnfFormula;

use crate::{Bdd, BddError, BddManager};

/// Builds the BDD of a CNF formula by conjoining clause BDDs.
///
/// Clauses are sorted by their top variable first, which keeps intermediate
/// products small for the block-structured CSC encodings (per-state
/// variable groups).
///
/// # Errors
///
/// [`BddError::NodeBudgetExceeded`] when the product blows up — callers
/// fall back to the SAT path.
///
/// ```
/// use modsyn_bdd::{build_from_cnf, BddManager};
/// use modsyn_sat::{CnfFormula, Lit, Var};
///
/// # fn main() -> Result<(), modsyn_bdd::BddError> {
/// let mut f = CnfFormula::new(2);
/// f.add_clause([Lit::positive(Var::new(0)), Lit::positive(Var::new(1))]);
/// f.add_clause([Lit::negative(Var::new(0))]);
/// let mut mgr = BddManager::new(2);
/// let bdd = build_from_cnf(&mut mgr, &f)?;
/// assert!(mgr.eval(bdd, &[false, true]));
/// assert!(!mgr.eval(bdd, &[true, true]));
/// # Ok(())
/// # }
/// ```
pub fn build_from_cnf(manager: &mut BddManager, formula: &CnfFormula) -> Result<Bdd, BddError> {
    if formula.contains_empty_clause() {
        return Ok(manager.zero());
    }
    // Clause BDDs.
    let mut clause_bdds: Vec<(usize, Bdd)> = Vec::with_capacity(formula.clause_count());
    for clause in formula.clauses() {
        let mut acc = manager.zero();
        let mut min_var = usize::MAX;
        for lit in clause {
            min_var = min_var.min(lit.var().index());
            let v = if lit.is_positive() {
                manager.var(lit.var().index())?
            } else {
                manager.nvar(lit.var().index())?
            };
            acc = manager.or(acc, v)?;
        }
        clause_bdds.push((min_var, acc));
    }
    // Conjoin in top-variable order, pairwise-balanced to keep products
    // shallow.
    clause_bdds.sort_by_key(|&(v, _)| v);
    let mut layer: Vec<Bdd> = clause_bdds.into_iter().map(|(_, b)| b).collect();
    if layer.is_empty() {
        return Ok(manager.one());
    }
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(manager.and(a, b)?),
                None => next.push(a),
            }
        }
        layer = next;
    }
    Ok(layer[0])
}

/// [`build_from_cnf`] wrapped in a `bdd.build` observability span recording
/// the formula size and the manager's node count afterwards. With a disabled
/// tracer this is exactly [`build_from_cnf`].
pub fn build_from_cnf_traced(
    manager: &mut BddManager,
    formula: &CnfFormula,
    tracer: &modsyn_obs::Tracer,
) -> Result<Bdd, BddError> {
    if !tracer.is_enabled() {
        return build_from_cnf(manager, formula);
    }
    let _span = tracer.span("bdd.build");
    tracer.gauge("vars", formula.num_vars() as f64);
    tracer.gauge("clauses", formula.clause_count() as f64);
    let result = build_from_cnf(manager, formula);
    tracer.gauge("nodes", manager.node_count() as f64);
    if result.is_err() {
        tracer.note("error", "node budget exceeded");
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sat::{solve, Lit, SolverOptions, Var};

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::new(i), pos)
    }

    #[test]
    fn agrees_with_sat_solver_on_random_formulas() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let n = 6usize;
            let mut f = CnfFormula::new(n);
            for _ in 0..(next() % 20 + 1) {
                let a = lit((next() % n as u64) as usize, next() % 2 == 0);
                let b = lit((next() % n as u64) as usize, next() % 2 == 0);
                let c = lit((next() % n as u64) as usize, next() % 2 == 0);
                f.add_clause([a, b, c]);
            }
            let mut mgr = BddManager::new(n);
            let bdd = build_from_cnf(&mut mgr, &f).unwrap();
            let sat = solve(&f, SolverOptions::default()).is_sat();
            assert_eq!(bdd != mgr.zero(), sat);
            // And the BDD is exact: check every assignment.
            for bits in 0u32..(1 << n) {
                let a: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
                assert_eq!(mgr.eval(bdd, &a), f.evaluate(&a));
            }
        }
    }

    #[test]
    fn empty_clause_gives_zero() {
        let mut f = CnfFormula::new(2);
        f.add_clause([]);
        let mut mgr = BddManager::new(2);
        assert_eq!(build_from_cnf(&mut mgr, &f).unwrap(), mgr.zero());
    }

    #[test]
    fn empty_formula_gives_one() {
        let f = CnfFormula::new(3);
        let mut mgr = BddManager::new(3);
        assert_eq!(build_from_cnf(&mut mgr, &f).unwrap(), mgr.one());
    }
}
