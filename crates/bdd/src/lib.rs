//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! This crate backs the BDD-based constraint-satisfaction extension the
//! paper points to in its conclusion ("the implementation area was further
//! reduced by developing a BDD based constraint satisfaction approach",
//! citing the authors' follow-up work). Unlike a SAT solver — which returns
//! *some* satisfying assignment — a BDD of the constraint formula supports
//! **minimum-cost** assignment extraction in one linear pass, so the CSC
//! layer can pick the insertion with the fewest excited states (smallest
//! expansion, least area).
//!
//! The manager is deliberately simple: an arena of `(var, lo, hi)` nodes
//! with a unique table, memoised `AND`/`OR`/`NOT`/ITE, conversion from
//! [`modsyn_sat::CnfFormula`], satisfying-assignment counting and
//! extraction, and a node budget that fails fast on blow-ups.
//!
//! # Example
//!
//! ```
//! use modsyn_bdd::BddManager;
//!
//! # fn main() -> Result<(), modsyn_bdd::BddError> {
//! let mut mgr = BddManager::new(2);
//! let a = mgr.var(0)?;
//! let b = mgr.var(1)?;
//! let f = mgr.or(a, b)?; // a ∨ b
//! assert_eq!(mgr.count_sat(f), 3);
//! let cheapest = mgr.min_cost_sat(f, &[(0.0, 5.0), (0.0, 1.0)]).unwrap();
//! assert_eq!(cheapest, vec![false, true]); // pay 1 for b, not 5 for a
//! # Ok(())
//! # }
//! ```

mod cnf;
mod error;
mod manager;
mod sat_ops;

pub use cnf::{build_from_cnf, build_from_cnf_traced};
pub use error::BddError;
pub use manager::{Bdd, BddManager};
