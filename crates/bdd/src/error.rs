//! Error type for the BDD manager.

use std::error::Error;
use std::fmt;

/// Errors raised while building BDDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The node budget was exceeded — the formula's BDD is too large under
    /// the current variable order. Callers fall back to the SAT path.
    NodeBudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// A variable index outside the manager's universe.
    VariableOutOfRange {
        /// The offending index.
        variable: usize,
        /// Number of declared variables.
        declared: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeBudgetExceeded { budget } => {
                write!(f, "bdd node budget of {budget} exceeded")
            }
            BddError::VariableOutOfRange { variable, declared } => {
                write!(f, "variable {variable} out of range, {declared} declared")
            }
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        assert!(BddError::NodeBudgetExceeded { budget: 7 }
            .to_string()
            .contains('7'));
        let e = BddError::VariableOutOfRange {
            variable: 9,
            declared: 2,
        };
        assert!(e.to_string().contains('9'));
    }
}
