//! Satisfying-assignment queries on BDDs.

use std::collections::HashMap;

use crate::{Bdd, BddManager};

impl BddManager {
    /// Number of satisfying assignments over the full variable universe.
    pub fn count_sat(&self, f: Bdd) -> u128 {
        let mut cache: HashMap<Bdd, u128> = HashMap::new();
        self.count_inner(f, &mut cache) << self.top_gap(f)
    }

    /// Levels skipped above the root (each doubles the count).
    fn top_gap(&self, f: Bdd) -> u32 {
        if self.is_terminal(f) {
            self.num_vars() as u32
        } else {
            self.node(f).0
        }
    }

    fn count_inner(&self, f: Bdd, cache: &mut HashMap<Bdd, u128>) -> u128 {
        if f == self.zero() {
            return 0;
        }
        if f == self.one() {
            return 1;
        }
        if let Some(&c) = cache.get(&f) {
            return c;
        }
        let (var, lo, hi) = self.node(f);
        let gap = |child: Bdd| -> u32 {
            let cv = if self.is_terminal(child) {
                self.num_vars() as u32
            } else {
                self.node(child).0
            };
            cv - var - 1
        };
        let total =
            (self.count_inner(lo, cache) << gap(lo)) + (self.count_inner(hi, cache) << gap(hi));
        cache.insert(f, total);
        total
    }

    /// Any satisfying assignment, or `None` for the zero function.
    /// Variables off the satisfying path are set to `false`.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f == self.zero() {
            return None;
        }
        let mut assignment = vec![false; self.num_vars()];
        let mut cur = f;
        while !self.is_terminal(cur) {
            let (var, lo, hi) = self.node(cur);
            if lo != self.zero() {
                cur = lo;
            } else {
                assignment[var as usize] = true;
                cur = hi;
            }
        }
        Some(assignment)
    }

    /// The satisfying assignment minimising `Σ cost(var, value)`, where
    /// `costs[v] = (cost_false, cost_true)`. Returns `None` for the zero
    /// function.
    ///
    /// This is the operation the BDD-based CSC layer exists for: picking
    /// the insertion with the fewest excited states in one linear pass
    /// over the diagram.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is shorter than the variable universe.
    pub fn min_cost_sat(&self, f: Bdd, costs: &[(f64, f64)]) -> Option<Vec<bool>> {
        assert!(costs.len() >= self.num_vars(), "cost per variable required");
        if f == self.zero() {
            return None;
        }
        // Cheapest completion cost from each node, over the variables at
        // and below the node's level (skipped variables take their cheaper
        // side).
        let mut best: HashMap<Bdd, f64> = HashMap::new();
        let skipped = |from: u32, to_node: Bdd| -> f64 {
            let to = if self.is_terminal(to_node) {
                self.num_vars() as u32
            } else {
                self.node(to_node).0
            };
            (from..to)
                .map(|v| {
                    let (c0, c1) = costs[v as usize];
                    c0.min(c1)
                })
                .sum()
        };
        // Resolve cost recursively (graphs are small; recursion is fine).
        fn cost_of(
            m: &BddManager,
            f: Bdd,
            costs: &[(f64, f64)],
            best: &mut HashMap<Bdd, f64>,
        ) -> f64 {
            if f == m.zero() {
                return f64::INFINITY;
            }
            if f == m.one() {
                return 0.0;
            }
            if let Some(&c) = best.get(&f) {
                return c;
            }
            let (var, lo, hi) = m.node(f);
            let (c0, c1) = costs[var as usize];
            let skip = |to_node: Bdd| -> f64 {
                let to = if m.is_terminal(to_node) {
                    m.num_vars() as u32
                } else {
                    m.node(to_node).0
                };
                (var + 1..to)
                    .map(|v| {
                        let (a, b) = costs[v as usize];
                        a.min(b)
                    })
                    .sum()
            };
            let via_lo = c0 + skip(lo) + cost_of(m, lo, costs, best);
            let via_hi = c1 + skip(hi) + cost_of(m, hi, costs, best);
            let c = via_lo.min(via_hi);
            best.insert(f, c);
            c
        }
        let _ = cost_of(self, f, costs, &mut best);

        // Walk the cheapest path, choosing the cheaper side for skipped
        // variables.
        let mut assignment: Vec<bool> = (0..self.num_vars())
            .map(|v| costs[v].1 < costs[v].0)
            .collect();
        let mut cur = f;
        while !self.is_terminal(cur) {
            let (var, lo, hi) = self.node(cur);
            let (c0, c1) = costs[var as usize];
            let lo_cost = c0
                + skipped(var + 1, lo)
                + *best
                    .get(&lo)
                    .unwrap_or(&if lo == self.one() { 0.0 } else { f64::INFINITY });
            let hi_cost = c1
                + skipped(var + 1, hi)
                + *best
                    .get(&hi)
                    .unwrap_or(&if hi == self.one() { 0.0 } else { f64::INFINITY });
            if lo_cost <= hi_cost {
                assignment[var as usize] = false;
                cur = lo;
            } else {
                assignment[var as usize] = true;
                cur = hi;
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_from_cnf;
    use modsyn_sat::{CnfFormula, Lit, Var};

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::new(i), pos)
    }

    #[test]
    fn count_sat_basics() {
        let mut m = BddManager::new(3);
        assert_eq!(m.count_sat(m.zero()), 0);
        assert_eq!(m.count_sat(m.one()), 8);
        let a = m.var(0).unwrap();
        assert_eq!(m.count_sat(a), 4);
        let b = m.var(2).unwrap();
        let f = m.and(a, b).unwrap();
        assert_eq!(m.count_sat(f), 2);
    }

    #[test]
    fn any_sat_satisfies() {
        let mut f = CnfFormula::new(4);
        f.add_clause([lit(0, false), lit(1, true)]);
        f.add_clause([lit(2, true), lit(3, false)]);
        f.add_clause([lit(0, true)]);
        let mut m = BddManager::new(4);
        let bdd = build_from_cnf(&mut m, &f).unwrap();
        let a = m.any_sat(bdd).expect("satisfiable");
        assert!(f.evaluate(&a));
    }

    #[test]
    fn any_sat_of_zero_is_none() {
        let m = BddManager::new(2);
        assert!(m.any_sat(m.zero()).is_none());
    }

    #[test]
    fn min_cost_prefers_cheap_literals() {
        // (a ∨ b): making b true costs 1, a costs 10.
        let mut m = BddManager::new(2);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.or(a, b).unwrap();
        let best = m.min_cost_sat(f, &[(0.0, 10.0), (0.0, 1.0)]).unwrap();
        assert_eq!(best, vec![false, true]);
        assert!(m.eval(f, &best));
    }

    #[test]
    fn min_cost_handles_skipped_levels() {
        // f = x2 over 4 vars; x0, x1, x3 are unconstrained and take their
        // cheaper polarity.
        let mut m = BddManager::new(4);
        let f = m.var(2).unwrap();
        let costs = [(5.0, 1.0), (1.0, 5.0), (2.0, 3.0), (0.0, 9.0)];
        let best = m.min_cost_sat(f, &costs).unwrap();
        assert_eq!(best, vec![true, false, true, false]);
        assert!(m.eval(f, &best));
    }

    #[test]
    fn min_cost_is_optimal_by_brute_force() {
        let mut seed = 0xfeed_f00d_dead_beefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..25 {
            let n = 5usize;
            let mut f = CnfFormula::new(n);
            for _ in 0..(next() % 10 + 1) {
                let a = lit((next() % n as u64) as usize, next() % 2 == 0);
                let b = lit((next() % n as u64) as usize, next() % 2 == 0);
                f.add_clause([a, b]);
            }
            let costs: Vec<(f64, f64)> = (0..n)
                .map(|_| ((next() % 7) as f64, (next() % 7) as f64))
                .collect();
            let mut m = BddManager::new(n);
            let bdd = build_from_cnf(&mut m, &f).unwrap();
            let Some(got) = m.min_cost_sat(bdd, &costs) else {
                continue;
            };
            assert!(f.evaluate(&got));
            let cost = |a: &[bool]| -> f64 {
                a.iter()
                    .enumerate()
                    .map(|(v, &x)| if x { costs[v].1 } else { costs[v].0 })
                    .sum()
            };
            let mut best = f64::INFINITY;
            for bits in 0u32..(1 << n) {
                let a: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
                if f.evaluate(&a) {
                    best = best.min(cost(&a));
                }
            }
            assert!(
                (cost(&got) - best).abs() < 1e-9,
                "got {} vs optimal {}",
                cost(&got),
                best
            );
        }
    }
}
