//! The BDD node arena and core boolean operations.

use std::collections::HashMap;

use crate::BddError;

/// Handle to a BDD root within a [`BddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

const FALSE: Bdd = Bdd(0);
const TRUE: Bdd = Bdd(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    /// Decision variable (level); terminals use `u32::MAX`.
    var: u32,
    /// Child when the variable is 0.
    lo: Bdd,
    /// Child when the variable is 1.
    hi: Bdd,
}

/// An ROBDD manager over a fixed variable universe `0..num_vars` in natural
/// order.
///
/// All operations are memoised; structurally equal functions share nodes,
/// so equality of [`Bdd`] handles is semantic equality.
#[derive(Debug)]
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    and_cache: HashMap<(Bdd, Bdd), Bdd>,
    or_cache: HashMap<(Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
    node_budget: usize,
}

impl BddManager {
    /// Creates a manager over `num_vars` variables with the default node
    /// budget (4 million nodes).
    pub fn new(num_vars: usize) -> Self {
        Self::with_budget(num_vars, 4_000_000)
    }

    /// Creates a manager with an explicit node budget; operations that
    /// would exceed it fail with [`BddError::NodeBudgetExceeded`].
    pub fn with_budget(num_vars: usize, node_budget: usize) -> Self {
        let terminal = |var| Node {
            var,
            lo: FALSE,
            hi: FALSE,
        };
        BddManager {
            num_vars,
            // Index 0 = FALSE terminal, 1 = TRUE terminal (children unused).
            nodes: vec![terminal(u32::MAX), terminal(u32::MAX)],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            not_cache: HashMap::new(),
            node_budget,
        }
    }

    /// The constant-false function.
    pub fn zero(&self) -> Bdd {
        FALSE
    }

    /// The constant-true function.
    pub fn one(&self) -> Bdd {
        TRUE
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return Ok(id);
        }
        if self.nodes.len() >= self.node_budget {
            return Err(BddError::NodeBudgetExceeded {
                budget: self.node_budget,
            });
        }
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        Ok(id)
    }

    /// The single-variable function `x_i`.
    ///
    /// # Errors
    ///
    /// [`BddError::VariableOutOfRange`] if `i >= num_vars`.
    pub fn var(&mut self, i: usize) -> Result<Bdd, BddError> {
        if i >= self.num_vars {
            return Err(BddError::VariableOutOfRange {
                variable: i,
                declared: self.num_vars,
            });
        }
        self.mk(i as u32, FALSE, TRUE)
    }

    /// The negated single-variable function `!x_i`.
    ///
    /// # Errors
    ///
    /// [`BddError::VariableOutOfRange`] if `i >= num_vars`.
    pub fn nvar(&mut self, i: usize) -> Result<Bdd, BddError> {
        if i >= self.num_vars {
            return Err(BddError::VariableOutOfRange {
                variable: i,
                declared: self.num_vars,
            });
        }
        self.mk(i as u32, TRUE, FALSE)
    }

    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        (n.lo, n.hi)
    }

    /// Conjunction `f ∧ g`.
    ///
    /// # Errors
    ///
    /// Propagates the node budget.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        if f == FALSE || g == FALSE {
            return Ok(FALSE);
        }
        if f == TRUE {
            return Ok(g);
        }
        if g == TRUE || f == g {
            return Ok(f);
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.and_cache.get(&key) {
            return Ok(r);
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f0, f1) = if vf == top { self.children(f) } else { (f, f) };
        let (g0, g1) = if vg == top { self.children(g) } else { (g, g) };
        let lo = self.and(f0, g0)?;
        let hi = self.and(f1, g1)?;
        let r = self.mk(top, lo, hi)?;
        self.and_cache.insert(key, r);
        Ok(r)
    }

    /// Disjunction `f ∨ g`.
    ///
    /// # Errors
    ///
    /// Propagates the node budget.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        if f == TRUE || g == TRUE {
            return Ok(TRUE);
        }
        if f == FALSE {
            return Ok(g);
        }
        if g == FALSE || f == g {
            return Ok(f);
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.or_cache.get(&key) {
            return Ok(r);
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let top = vf.min(vg);
        let (f0, f1) = if vf == top { self.children(f) } else { (f, f) };
        let (g0, g1) = if vg == top { self.children(g) } else { (g, g) };
        let lo = self.or(f0, g0)?;
        let hi = self.or(f1, g1)?;
        let r = self.mk(top, lo, hi)?;
        self.or_cache.insert(key, r);
        Ok(r)
    }

    /// Negation `¬f`.
    ///
    /// # Errors
    ///
    /// Propagates the node budget.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd, BddError> {
        match f {
            FALSE => return Ok(TRUE),
            TRUE => return Ok(FALSE),
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return Ok(r);
        }
        let var = self.var_of(f);
        let (lo, hi) = self.children(f);
        let nlo = self.not(lo)?;
        let nhi = self.not(hi)?;
        let r = self.mk(var, nlo, nhi)?;
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        Ok(r)
    }

    /// If-then-else `i ? t : e`.
    ///
    /// # Errors
    ///
    /// Propagates the node budget.
    pub fn ite(&mut self, i: Bdd, t: Bdd, e: Bdd) -> Result<Bdd, BddError> {
        let it = self.and(i, t)?;
        let ni = self.not(i)?;
        let nie = self.and(ni, e)?;
        self.or(it, nie)
    }

    /// Evaluates `f` under a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the universe requires.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            match cur {
                FALSE => return false,
                TRUE => return true,
                _ => {
                    let var = self.var_of(cur) as usize;
                    let (lo, hi) = self.children(cur);
                    cur = if assignment[var] { hi } else { lo };
                }
            }
        }
    }

    /// Restricts variable `i` to `value` (the cofactor).
    ///
    /// # Errors
    ///
    /// Propagates the node budget and variable range.
    pub fn restrict(&mut self, f: Bdd, i: usize, value: bool) -> Result<Bdd, BddError> {
        if i >= self.num_vars {
            return Err(BddError::VariableOutOfRange {
                variable: i,
                declared: self.num_vars,
            });
        }
        self.restrict_inner(f, i as u32, value, &mut HashMap::new())
    }

    fn restrict_inner(
        &mut self,
        f: Bdd,
        i: u32,
        value: bool,
        cache: &mut HashMap<Bdd, Bdd>,
    ) -> Result<Bdd, BddError> {
        if f == FALSE || f == TRUE || self.var_of(f) > i {
            return Ok(f);
        }
        if let Some(&r) = cache.get(&f) {
            return Ok(r);
        }
        let var = self.var_of(f);
        let (lo, hi) = self.children(f);
        let r = if var == i {
            if value {
                hi
            } else {
                lo
            }
        } else {
            let nlo = self.restrict_inner(lo, i, value, cache)?;
            let nhi = self.restrict_inner(hi, i, value, cache)?;
            self.mk(var, nlo, nhi)?
        };
        cache.insert(f, r);
        Ok(r)
    }

    /// Existential quantification `∃ x_i . f`.
    ///
    /// # Errors
    ///
    /// Propagates the node budget and variable range.
    pub fn exists(&mut self, f: Bdd, i: usize) -> Result<Bdd, BddError> {
        let f0 = self.restrict(f, i, false)?;
        let f1 = self.restrict(f, i, true)?;
        self.or(f0, f1)
    }

    pub(crate) fn node(&self, f: Bdd) -> (u32, Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        (n.var, n.lo, n.hi)
    }

    pub(crate) fn is_terminal(&self, f: Bdd) -> bool {
        f == FALSE || f == TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut m = BddManager::new(2);
        assert_ne!(m.zero(), m.one());
        let a = m.var(0).unwrap();
        assert!(m.eval(a, &[true, false]));
        assert!(!m.eval(a, &[false, true]));
        let na = m.nvar(0).unwrap();
        assert!(m.eval(na, &[false, false]));
    }

    #[test]
    fn structural_equality_is_semantic() {
        let mut m = BddManager::new(3);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        // (a ∧ b) ∨ a  ==  a
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, a).unwrap();
        assert_eq!(f, a);
        // De Morgan.
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let lhs = m.not(ab).unwrap();
        let rhs = m.or(na, nb).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut m = BddManager::new(3);
        let i = m.var(0).unwrap();
        let t = m.var(1).unwrap();
        let e = m.var(2).unwrap();
        let f = m.ite(i, t, e).unwrap();
        for bits in 0..8u8 {
            let a = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let expect = if a[0] { a[1] } else { a[2] };
            assert_eq!(m.eval(f, &a), expect, "{a:?}");
        }
    }

    #[test]
    fn restrict_and_exists() {
        let mut m = BddManager::new(2);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.and(a, b).unwrap();
        let f_a1 = m.restrict(f, 0, true).unwrap();
        assert_eq!(f_a1, b);
        let f_a0 = m.restrict(f, 0, false).unwrap();
        assert_eq!(f_a0, m.zero());
        let ex = m.exists(f, 0).unwrap();
        assert_eq!(ex, b);
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut m = BddManager::with_budget(8, 6);
        let mut acc = m.var(0).unwrap();
        let mut failed = false;
        for i in 1..8 {
            let v = m.var(i);
            match v.and_then(|v| m.and(acc, v)) {
                Ok(next) => acc = next,
                Err(BddError::NodeBudgetExceeded { .. }) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(failed, "tiny budget must overflow");
    }

    #[test]
    fn out_of_range_variable_errors() {
        let mut m = BddManager::new(1);
        assert!(matches!(m.var(3), Err(BddError::VariableOutOfRange { .. })));
    }
}
