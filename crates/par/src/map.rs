//! Deterministic data-parallel map over borrowed slices.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::pool::JobPanic;

/// Applies `f` to every item on up to `jobs` scoped worker threads and
/// returns the results **in input order**, regardless of which worker
/// finished first. `f` receives the item index alongside the item.
///
/// Panics inside `f` are contained per item and surfaced as
/// `Err(JobPanic)` in that item's slot; the remaining items still run.
/// With `jobs <= 1` (or a single item) everything runs inline on the
/// calling thread — same results, no thread overhead — which is what makes
/// callers' sequential and parallel modes byte-for-byte comparable.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(JobPanic::from_payload)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, Result<R, JobPanic>)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break local;
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
                            .map_err(JobPanic::from_payload);
                        local.push((i, result));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker contained its panics"))
            .collect()
    });

    let mut out: Vec<Option<Result<R, JobPanic>>> = Vec::new();
    out.resize_with(items.len(), || None);
    for (i, result) in buckets.into_iter().flatten() {
        out[i] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

/// Unwraps a [`par_map`] slot, resuming the contained panic on the calling
/// thread — for callers whose sequential mode would have panicked in place.
pub fn unwrap_or_resume<R>(result: Result<R, JobPanic>) -> R {
    match result {
        Ok(value) => value,
        Err(panic) => std::panic::resume_unwind(Box::new(panic.message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        // Sleep inversely to index so later items finish first.
        let results = par_map(4, &items, |i, &x| {
            if i < 4 {
                std::thread::sleep(Duration::from_millis(5));
            }
            x * 2
        });
        let values: Vec<usize> = results.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_runs_inline_and_matches_parallel() {
        let items: Vec<u32> = (0..17).collect();
        let seq: Vec<u32> = par_map(1, &items, |i, &x| x + i as u32)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        let par: Vec<u32> = par_map(8, &items, |i, &x| x + i as u32)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        let one = [41];
        assert_eq!(*par_map(4, &one, |_, &x| x + 1)[0].as_ref().unwrap(), 42);
    }

    #[test]
    fn a_panicking_item_does_not_sink_the_others() {
        let items: Vec<usize> = (0..10).collect();
        let ran = AtomicUsize::new(0);
        let results = par_map(3, &items, |_, &x| {
            ran.fetch_add(1, Ordering::SeqCst);
            assert!(x != 5, "item five is cursed");
            x
        });
        assert_eq!(ran.load(Ordering::SeqCst), 10, "all items attempted");
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                assert!(r.as_ref().unwrap_err().message.contains("cursed"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn unwrap_or_resume_rethrows_the_message() {
        let caught = std::panic::catch_unwind(|| {
            unwrap_or_resume::<()>(Err(JobPanic {
                message: "original message".to_string(),
            }))
        });
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<String>().unwrap();
        assert!(message.contains("original message"));
    }
}
