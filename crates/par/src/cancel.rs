//! Cooperative cancellation: an atomic flag plus an optional deadline,
//! checked at loop boundaries by whoever holds a token clone.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            // Latch the flag so later checks skip the clock read.
            self.flag.store(true, Ordering::Release);
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

/// A clonable cancellation handle.
///
/// All clones share one flag: [`CancelToken::cancel`] on any clone makes
/// [`CancelToken::is_cancelled`] true on every clone, as does reaching the
/// deadline the token was created with. Cancellation is *cooperative* — the
/// long-running code must poll `is_cancelled` at loop boundaries and unwind
/// cleanly (the SAT solver returns `Outcome::Aborted`, the synthesis
/// drivers `SynthesisError::Aborted`).
///
/// [`CancelToken::never`] (the `Default`) carries no state at all: polling
/// it is a branch on `None`, so hot loops instrumented with a token pay
/// nothing when cancellation is unused.
///
/// [`CancelToken::child`] builds hierarchies: a child trips when its own
/// flag/deadline trips *or* when any ancestor does, while cancelling the
/// child leaves the parent alive. The SAT portfolio uses exactly this — one
/// race-local child per attempt under the caller's overall deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that can only be cancelled explicitly.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// A token that is never cancelled and cannot be: the no-op default.
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token that trips `timeout` from now (or earlier, if cancelled).
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that trips at `deadline` (or earlier, if cancelled).
    pub fn with_deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            })),
        }
    }

    /// A child token: cancelled when this token is, but cancelling the
    /// child does not touch this token. On a [`CancelToken::never`] parent
    /// this is a plain [`CancelToken::new`].
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: self.inner.clone(),
            })),
        }
    }

    /// A child token that additionally trips `timeout` from now: cancelled
    /// when this token is, when its own deadline passes, or explicitly —
    /// the shape of a per-attempt deadline under an overall run deadline
    /// (the retry ladder's rungs).
    pub fn child_with_deadline(&self, timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: self.inner.clone(),
            })),
        }
    }

    /// Trips the token (a no-op on [`CancelToken::never`]).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been cancelled or its deadline (or an
    /// ancestor's) has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.is_cancelled())
    }

    /// Whether this token can ever cancel (false only for
    /// [`CancelToken::never`]).
    pub fn is_cancellable(&self) -> bool {
        self.inner.is_some()
    }
}

/// Tokens compare by identity: two clones of the same token are equal, two
/// independently created tokens are not, and all `never` tokens are equal.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_inert() {
        let t = CancelToken::never();
        assert!(!t.is_cancellable());
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert_eq!(t, CancelToken::default());
    }

    #[test]
    fn cancel_is_visible_to_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_trips_on_its_own() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        // And stays tripped (the flag latched).
        assert!(t.is_cancelled());
    }

    #[test]
    fn already_expired_deadline_is_cancelled_immediately() {
        let t = CancelToken::with_deadline_at(Instant::now());
        assert!(t.is_cancelled());
    }

    #[test]
    fn child_follows_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak upward");

        let child2 = parent.child();
        parent.cancel();
        assert!(child2.is_cancelled(), "parent cancel reaches children");
    }

    #[test]
    fn deadlined_child_trips_on_its_own_deadline_and_on_the_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::from_millis(10));
        assert!(!child.is_cancelled());
        std::thread::sleep(Duration::from_millis(20));
        assert!(child.is_cancelled(), "own deadline trips the child");
        assert!(
            !parent.is_cancelled(),
            "child deadline must not leak upward"
        );

        let child2 = parent.child_with_deadline(Duration::from_secs(3600));
        parent.cancel();
        assert!(child2.is_cancelled(), "parent cancel reaches the child");
    }

    #[test]
    fn equality_is_identity() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_ne!(a, CancelToken::never());
    }

    #[test]
    fn token_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
