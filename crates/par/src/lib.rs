//! Zero-dependency parallel execution substrate for the modsyn pipeline.
//!
//! Per the workspace §5 dependency policy this crate uses the standard
//! library only — no `rayon`, no `crossbeam`, no `tokio`. It provides the
//! three primitives the synthesis stack parallelises with:
//!
//! * [`WorkerPool`] — N OS threads over one shared FIFO injector queue,
//!   with per-job panic containment ([`JobPanic`]) and graceful
//!   drain-on-drop. The bench harness runs Table-1 rows on it.
//! * [`CancelToken`] — a cooperative cancellation handle (atomic flag +
//!   optional deadline + parent chaining). The SAT solver polls it in its
//!   search loops and returns a clean `Aborted` outcome; the CLI's
//!   `--timeout-ms` is one of these tokens.
//! * [`par_map`] — a deterministic parallel map: results come back in
//!   input order no matter which worker finished first, and `jobs <= 1`
//!   degenerates to an inline sequential loop. The parallel modular
//!   synthesis driver leans on this to stay byte-for-byte identical to the
//!   sequential driver.
//!
//! Everything is instrumented through `modsyn-obs` (per-worker spans,
//! `queue_depth` gauge, `panics` counter) when a pool is built
//! [`WorkerPool::with_tracer`].
//!
//! # Example
//!
//! ```
//! use modsyn_par::{par_map, CancelToken, WorkerPool};
//! use std::time::Duration;
//!
//! // Ordered parallel map.
//! let squares: Vec<u64> = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x)
//!     .into_iter()
//!     .map(Result::unwrap)
//!     .collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // A pool with contained panics.
//! let pool = WorkerPool::new(2);
//! let ok = pool.submit("fine", || 21 * 2);
//! let bad = pool.submit("boom", || panic!("contained"));
//! assert_eq!(ok.join().unwrap(), 42);
//! assert!(bad.join().is_err());
//!
//! // Cooperative deadline.
//! let token = CancelToken::with_deadline(Duration::from_millis(1));
//! std::thread::sleep(Duration::from_millis(5));
//! assert!(token.is_cancelled());
//! ```

mod cancel;
mod map;
mod pool;

pub use cancel::CancelToken;
pub use map::{par_map, unwrap_or_resume};
pub use pool::{available_jobs, JobHandle, JobPanic, WorkerPool};
