//! The worker pool: N OS threads draining one shared injector queue.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Instant;

use modsyn_fault::{site, FaultHook, Faults};
use modsyn_obs::{FlightKind, Tracer};

/// The number of workers to use when the caller does not care: the
/// machine's available parallelism, 1 if it cannot be determined.
pub fn available_jobs() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// A job panicked; the panic was contained by the pool and surfaced as this
/// error instead of unwinding a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, stringified (`"<non-string panic payload>"` when
    /// the payload was neither `&str` nor `String`).
    pub message: String,
}

impl JobPanic {
    /// Extracts a printable message from a `catch_unwind` payload.
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> JobPanic {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        JobPanic { message }
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    tracer: Tracer,
    faults: Faults,
}

impl Shared {
    /// Locks the queue, recovering from poison: a panicking job runs
    /// *outside* this lock, but a panic anywhere else (e.g. an allocator
    /// abort path in a submitter) must not deadlock the whole pool.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Receives one job's result; returned by [`WorkerPool::submit`].
#[derive(Debug)]
pub struct JobHandle<T> {
    rx: mpsc::Receiver<Result<T, JobPanic>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes. A panicking job yields
    /// `Err(JobPanic)`; the pool itself is unaffected.
    pub fn join(self) -> Result<T, JobPanic> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(JobPanic {
                message: "job was dropped before completion".to_string(),
            })
        })
    }
}

/// A fixed-size worker pool over one shared FIFO injector queue.
///
/// * **Panic containment** — every job runs under `catch_unwind`; a panic
///   becomes `Err(JobPanic)` on that job's [`JobHandle`] and the worker
///   lives on. No pool or observability mutex is ever poisoned by a job
///   panic (the job executes outside all pool locks, and the `modsyn-obs`
///   sink recovers from poison by design).
/// * **Drop semantics** — dropping the pool drains the queue: already
///   submitted jobs still run, then the workers exit and are joined.
/// * **Observability** — built [`WorkerPool::with_tracer`], each worker
///   runs under a `worker:<i>` span, each job under a `job:<label>` span on
///   that worker's thread, the queue depth is sampled as a `queue_depth`
///   gauge on every submit and every pop (so it returns to zero when the
///   queue drains), and contained panics count into a `panics` counter.
/// * **Fault injection** — built [`WorkerPool::with_tracer_and_faults`],
///   the pool probes the `pool.*` sites per job; injections are mirrored
///   into an `injected_faults` counter.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// A pool with `jobs` workers (at least one) and no instrumentation.
    pub fn new(jobs: usize) -> WorkerPool {
        WorkerPool::with_tracer(jobs, Tracer::disabled())
    }

    /// A pool with `jobs` workers recording into `tracer`.
    pub fn with_tracer(jobs: usize, tracer: Tracer) -> WorkerPool {
        WorkerPool::with_tracer_and_faults(jobs, tracer, Faults::none())
    }

    /// A pool with `jobs` workers, a tracer, and an armed fault plan. The
    /// pool probes four sites per job — `pool.stall` (worker sleeps the
    /// rule's delay before the job), `pool.enqueue` (panic as the worker
    /// picks the job up, before the caller's closure runs), `pool.run`
    /// (panic after the closure ran, discarding its result) and
    /// `pool.drain` (the result channel is dropped before the send) — all
    /// inside the pool's normal panic containment, so an injection
    /// surfaces as `Err(JobPanic)` on that job's handle and nowhere else.
    pub fn with_tracer_and_faults(jobs: usize, tracer: Tracer, faults: Faults) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tracer,
            faults,
        });
        let workers = (0..jobs.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("modsyn-par-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `f` and returns a handle to its result. `label` names the
    /// job's observability span.
    pub fn submit<T, F>(&self, label: &str, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let tracer = self.shared.tracer.clone();
        let faults = self.shared.faults.clone();
        let label = label.to_string();
        let submitted = Instant::now();
        let job: Job = Box::new(move || {
            // Enqueue-to-run wait: how long the job sat in the injector
            // queue before a worker picked it up.
            let wait_us = submitted.elapsed().as_micros() as u64;
            tracer.record_hist("pool_wait_us", wait_us);
            tracer.flight_event(FlightKind::Counter, "pool.wait_us", wait_us);
            let _flight = tracer.flight_span("pool.job");
            let span = tracer.span(&format!("job:{label}"));
            if let Some(delay) = faults.stall(site::POOL_STALL) {
                tracer.counter("injected_faults", 1);
                tracer.flight_event(FlightKind::Fault, site::POOL_STALL, 1);
                thread::sleep(delay);
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                if faults.fire(site::POOL_ENQUEUE) {
                    tracer.counter("injected_faults", 1);
                    tracer.flight_event(FlightKind::Fault, site::POOL_ENQUEUE, 1);
                    panic!("injected fault: {}", site::POOL_ENQUEUE);
                }
                let value = f();
                if faults.fire(site::POOL_RUN) {
                    tracer.counter("injected_faults", 1);
                    tracer.flight_event(FlightKind::Fault, site::POOL_RUN, 1);
                    panic!("injected fault: {}", site::POOL_RUN);
                }
                value
            }))
            .map_err(JobPanic::from_payload);
            drop(span);
            if result.is_err() {
                tracer.counter("panics", 1);
            }
            if faults.fire(site::POOL_DRAIN) {
                // Drop the sender without sending: the handle observes a
                // vanished job ("dropped before completion").
                tracer.counter("injected_faults", 1);
                tracer.flight_event(FlightKind::Fault, site::POOL_DRAIN, 1);
                drop(tx);
                return;
            }
            // The handle may have been dropped; the result is then unwanted.
            let _ = tx.send(result);
        });
        let depth = {
            let mut queue = self.shared.lock_queue();
            queue.push_back(job);
            queue.len()
        };
        self.shared.tracer.gauge("queue_depth", depth as f64);
        self.shared.available.notify_one();
        JobHandle { rx }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker never unwinds (jobs are caught), but don't let a
            // surprise take the caller down during drop.
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let _worker_span = shared.tracer.span(&format!("worker:{index}"));
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    // Sample the post-pop depth so the gauge demonstrably
                    // returns to zero once the queue drains.
                    shared.tracer.gauge("queue_depth", queue.len() as f64);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_per_handle_in_any_submit_order() {
        let pool = WorkerPool::new(4);
        let handles: Vec<_> = (0..32)
            .map(|i| pool.submit("square", move || i * i))
            .collect();
        let results: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_pool_runs_jobs_in_fifo_order() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let order = Arc::clone(&order);
                pool.submit("record", move || order.lock().unwrap().push(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn panics_are_contained_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let bad = pool.submit("boom", || -> usize { panic!("intentional: {}", 42) });
        let good = pool.submit("fine", || 7usize);
        let err = bad.join().unwrap_err();
        assert!(err.message.contains("intentional: 42"), "{err}");
        assert_eq!(good.join().unwrap(), 7);
        // The pool keeps accepting work after a panic.
        assert_eq!(pool.submit("more", || 1 + 1).join().unwrap(), 2);
    }

    #[test]
    fn drop_drains_already_submitted_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                let _ = pool.submit("count", move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins the workers
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicking_job_does_not_poison_the_obs_sink() {
        let tracer = Tracer::enabled();
        let pool = WorkerPool::with_tracer(2, tracer.clone());
        let bad = pool.submit("boom", || -> () { panic!("die mid-span") });
        assert!(bad.join().is_err());
        // The sink mutex is still usable from any thread, and the panic
        // was surfaced as a counter rather than a poisoned lock.
        tracer.counter("after", 1);
        let report = tracer.report();
        assert_eq!(report.total_counter("panics"), 1);
        assert_eq!(report.total_counter("after"), 1);
        // The job span closed on unwind.
        assert_eq!(report.spans_with_prefix("job:boom").len(), 1);
    }

    #[test]
    fn pool_instrumentation_records_workers_and_queue_depth() {
        let tracer = Tracer::enabled();
        {
            let pool = WorkerPool::with_tracer(3, tracer.clone());
            let handles: Vec<_> = (0..6).map(|i| pool.submit("t", move || i)).collect();
            for h in handles {
                let _ = h.join();
            }
        }
        let report = tracer.report();
        assert_eq!(report.spans_with_prefix("worker:").len(), 3);
        assert_eq!(report.spans_with_prefix("job:t").len(), 6);
    }

    #[test]
    fn pool_records_queue_wait_and_flight_spans() {
        use modsyn_obs::{FlightRecorder, HistogramRegistry};
        let flight = FlightRecorder::with_capacity(2, 64);
        let hists = HistogramRegistry::new();
        let tracer = Tracer::disabled()
            .with_flight(flight.clone())
            .with_histograms(hists.clone());
        {
            let pool = WorkerPool::with_tracer(2, tracer);
            let handles: Vec<_> = (0..5).map(|i| pool.submit("w", move || i)).collect();
            for h in handles {
                let _ = h.join();
            }
        }
        let wait = hists
            .snapshot()
            .into_iter()
            .find(|(n, _)| n == "pool_wait_us")
            .expect("pool_wait_us registered")
            .1;
        assert_eq!(wait.count(), 5);
        let events = flight.snapshot();
        let opens = events
            .iter()
            .filter(|e| e.name == "pool.job" && e.kind == FlightKind::SpanOpen)
            .count();
        let closes = events
            .iter()
            .filter(|e| e.name == "pool.job" && e.kind == FlightKind::SpanClose)
            .count();
        assert_eq!((opens, closes), (5, 5));
    }

    #[test]
    fn injected_faults_appear_in_the_flight_recorder() {
        use modsyn_fault::{FaultPlan, FaultRule};
        use modsyn_obs::FlightRecorder;
        let flight = FlightRecorder::with_capacity(1, 32);
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::POOL_ENQUEUE).times(1))
            .arm();
        let pool = WorkerPool::with_tracer_and_faults(
            1,
            Tracer::disabled().with_flight(flight.clone()),
            faults,
        );
        assert!(pool.submit("boom", || 1).join().is_err());
        assert!(flight
            .snapshot()
            .iter()
            .any(|e| e.kind == FlightKind::Fault && e.name == site::POOL_ENQUEUE));
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn injected_enqueue_panic_prevents_the_job_from_running() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::POOL_ENQUEUE).times(1))
            .arm();
        let pool = WorkerPool::with_tracer_and_faults(1, Tracer::disabled(), faults);
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let err = pool
            .submit("boom", move || flag.store(true, Ordering::SeqCst))
            .join()
            .unwrap_err();
        assert!(err.message.contains("pool.enqueue"), "{err}");
        assert!(
            !ran.load(Ordering::SeqCst),
            "enqueue faults pre-empt the job"
        );
        // Budget spent: the pool works again.
        assert_eq!(pool.submit("ok", || 5).join().unwrap(), 5);
    }

    #[test]
    fn injected_run_panic_discards_the_result_after_the_job_ran() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::POOL_RUN).times(1))
            .arm();
        let pool = WorkerPool::with_tracer_and_faults(1, Tracer::disabled(), faults);
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let err = pool
            .submit("boom", move || flag.store(true, Ordering::SeqCst))
            .join()
            .unwrap_err();
        assert!(err.message.contains("pool.run"), "{err}");
        assert!(ran.load(Ordering::SeqCst), "run faults fire after the job");
    }

    #[test]
    fn injected_drain_fault_surfaces_as_a_dropped_job() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::POOL_DRAIN).times(1))
            .arm();
        let pool = WorkerPool::with_tracer_and_faults(1, Tracer::disabled(), faults);
        let err = pool.submit("gone", || 1).join().unwrap_err();
        assert!(err.message.contains("dropped before completion"), "{err}");
        assert_eq!(pool.submit("ok", || 2).join().unwrap(), 2);
    }

    #[test]
    fn injected_stall_delays_but_completes_the_job() {
        use modsyn_fault::{FaultPlan, FaultRule};
        use std::time::{Duration, Instant};
        let faults = FaultPlan::new("t", 1)
            .rule(
                FaultRule::at(site::POOL_STALL)
                    .times(1)
                    .delay(Duration::from_millis(30)),
            )
            .arm();
        let pool = WorkerPool::with_tracer_and_faults(1, Tracer::disabled(), faults);
        let started = Instant::now();
        assert_eq!(pool.submit("slow", || 9).join().unwrap(), 9);
        assert!(started.elapsed() >= Duration::from_millis(30));
    }
}
