//! `modsynfleet` — supervise a self-healing fleet of `modsynd` replicas.
//!
//! ```text
//! modsynfleet [--replicas N] [--base-port P] [--durable-root DIR]
//!             [--probe-ms T] [--backoff-ms T] [--backoff-max-ms T]
//!             [--storm-window-ms T] [--storm-threshold N]
//!             [--faults SPEC] [--fault-seed N] [--ticks N]
//!             [--modsynd PATH] [-- EXTRA_MODSYND_ARGS...]
//! ```
//!
//! Spawns `N` replicas on consecutive ports starting at `P` (default 3 on
//! 7180..) and supervises them forever (or for `--ticks` probe cycles):
//! dead replicas restart with capped exponential backoff, crash loops trip
//! the restart-storm brake, and every supervision decision prints as one
//! line to stdout.
//!
//! With `--durable-root DIR` each replica gets its own crash-safe store at
//! `DIR/replica-<i>` (passed to modsynd as `--durable`), so a `kill -9`'d
//! replica restarts warm after journal replay. `--faults
//! 'fleet.replica-kill@1/200'` arms the supervisor's own chaos lever:
//! matching ticks SIGKILL a replica and the fleet heals itself.
//!
//! Arguments after `--` are forwarded verbatim to every replica (e.g.
//! `-- --jobs 2 --access-log off`).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use modsyn_fault::FaultPlan;
use modsyn_fleet::{sibling_binary, FleetConfig, FleetEvent, Supervisor};

fn usage() -> &'static str {
    "usage: modsynfleet [--replicas N] [--base-port P] [--durable-root DIR] \
     [--probe-ms T] [--backoff-ms T] [--backoff-max-ms T] \
     [--storm-window-ms T] [--storm-threshold N] [--faults SPEC] \
     [--fault-seed N] [--ticks N] [--modsynd PATH] [-- EXTRA_MODSYND_ARGS...]\n\
     \n\
     Supervises N modsynd replicas on consecutive ports: health probes,\n\
     backoff restarts, restart-storm braking. --durable-root gives each\n\
     replica a crash-safe store at DIR/replica-<i>. --faults\n\
     'fleet.replica-kill@1/200' arms chaos kills (kill -9 semantics)."
}

struct Args {
    config: FleetConfig,
    probe: Duration,
    ticks: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = FleetConfig::default();
    let mut probe = Duration::from_millis(200);
    let mut ticks = None;
    let mut durable_root: Option<String> = None;
    let mut modsynd: Option<String> = None;
    let mut extra: Vec<String> = Vec::new();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 0x000d_da05_u64;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--replicas" => {
                config.replicas = value("--replicas")?
                    .parse()
                    .map_err(|_| "bad --replicas value")?;
                if config.replicas == 0 {
                    return Err("--replicas must be at least 1".to_string());
                }
            }
            "--base-port" => {
                config.base_port = value("--base-port")?
                    .parse()
                    .map_err(|_| "bad --base-port value")?;
            }
            "--durable-root" => durable_root = Some(value("--durable-root")?),
            "--probe-ms" => {
                probe = Duration::from_millis(
                    value("--probe-ms")?
                        .parse()
                        .map_err(|_| "bad --probe-ms value")?,
                );
            }
            "--backoff-ms" => {
                config.backoff_initial = Duration::from_millis(
                    value("--backoff-ms")?
                        .parse()
                        .map_err(|_| "bad --backoff-ms value")?,
                );
            }
            "--backoff-max-ms" => {
                config.backoff_max = Duration::from_millis(
                    value("--backoff-max-ms")?
                        .parse()
                        .map_err(|_| "bad --backoff-max-ms value")?,
                );
            }
            "--storm-window-ms" => {
                config.storm_window = Duration::from_millis(
                    value("--storm-window-ms")?
                        .parse()
                        .map_err(|_| "bad --storm-window-ms value")?,
                );
            }
            "--storm-threshold" => {
                config.storm_threshold = value("--storm-threshold")?
                    .parse()
                    .map_err(|_| "bad --storm-threshold value")?;
            }
            "--faults" => fault_spec = Some(value("--faults")?),
            "--fault-seed" => {
                fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|_| "bad --fault-seed value")?;
            }
            "--ticks" => {
                ticks = Some(value("--ticks")?.parse().map_err(|_| "bad --ticks value")?);
            }
            "--modsynd" => modsynd = Some(value("--modsynd")?),
            "--" => {
                extra.extend(it.by_ref());
                break;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }

    let daemon = match modsynd {
        Some(p) => p,
        None => sibling_binary("modsynd")
            .map_err(|e| format!("{e} (pass --modsynd PATH)"))?
            .to_string_lossy()
            .into_owned(),
    };
    let mut command = vec![
        daemon,
        "--addr".to_string(),
        "127.0.0.1:{port}".to_string(),
        "--access-log".to_string(),
        "off".to_string(),
    ];
    if let Some(root) = durable_root {
        command.push("--durable".to_string());
        command.push(format!("{root}/replica-{{replica}}"));
    }
    command.extend(extra);
    config.command = command;

    if let Some(spec) = fault_spec {
        let plan = FaultPlan::parse("modsynfleet", &spec, fault_seed)?;
        eprintln!("chaos: armed fault plan {spec:?} (seed {fault_seed})");
        config.faults = plan.arm();
    }
    Ok(Args {
        config,
        probe,
        ticks,
    })
}

fn describe(event: &FleetEvent) -> String {
    match event {
        FleetEvent::Started {
            replica,
            port,
            pid,
            restarts,
        } => format!("replica {replica} up on port {port} (pid {pid}, restart #{restarts})"),
        FleetEvent::Died { replica, port } => format!("replica {replica} (port {port}) died"),
        FleetEvent::BackingOff {
            replica,
            remaining_ms,
        } => format!("replica {replica} backing off ({remaining_ms}ms left)"),
        FleetEvent::Storm { replica, in_window } => {
            format!("replica {replica} storming ({in_window} deaths in window) — restarts paused")
        }
        FleetEvent::KillInjected { replica, port } => {
            format!("chaos: injected kill -9 on replica {replica} (port {port})")
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut sup = match Supervisor::start(args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (i, addr) in sup.addrs().iter().enumerate() {
        println!("fleet: replica {i} at http://{addr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let mut tick = 0u64;
    loop {
        std::thread::sleep(args.probe);
        for event in sup.tick(Instant::now()) {
            println!("fleet: {}", describe(&event));
            let _ = std::io::stdout().flush();
        }
        tick += 1;
        if args.ticks.is_some_and(|n| tick >= n) {
            break;
        }
    }
    sup.shutdown();
    ExitCode::SUCCESS
}
