//! The replica supervisor: spawn, probe, restart.
//!
//! A [`Supervisor`] owns N child processes (normally `modsynd` replicas on
//! consecutive ports) and drives them from a deterministic [`tick`]
//! (crash-only supervision in the Erlang style, on `std::process`):
//!
//! * **Probing** — every tick each replica is checked for liveness:
//!   process exit always counts as dead; [`HealthMode::Http`] additionally
//!   requires a 200 from `GET /healthz` on the replica's port. (Liveness,
//!   not readiness — a replica busy replaying its journal must not be
//!   killed for it.)
//! * **Restarts** — a dead replica is restarted after a capped exponential
//!   backoff (reset by a healthy probe), so a crash-looping binary cannot
//!   busy-spin the supervisor.
//! * **Storm detection** — when a replica dies more than
//!   [`FleetConfig::storm_threshold`] times within
//!   [`FleetConfig::storm_window`], restarts pause until the window
//!   slides: the fleet serves degraded on the survivors instead of
//!   churning.
//! * **Chaos** — the `fleet.replica-kill` fault site is probed once per
//!   replica per tick; when an armed plan fires, the replica is SIGKILLed
//!   (`Child::kill`), which is exactly the `kill -9` the chaos matrix
//!   certifies recovery from.
//!
//! [`tick`]: Supervisor::tick

use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use modsyn_fault::{site, FaultHook, Faults};
use modsyn_svc::client;

/// How a replica's health is judged, beyond "the process is running".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthMode {
    /// Process liveness only — lets the supervisor be tested with any
    /// binary (`/bin/sleep`), no HTTP endpoint required.
    Process,
    /// Process liveness *and* a 200 from `GET /healthz` on the replica's
    /// port (the `modsynd` fleet mode).
    Http,
}

/// Fleet shape and supervision tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Argv template for one replica; `{port}` and `{replica}` in any
    /// argument are substituted per replica.
    pub command: Vec<String>,
    /// Replica count.
    pub replicas: usize,
    /// First port; replica `i` gets `base_port + i`.
    pub base_port: u16,
    /// Health judgement (see [`HealthMode`]).
    pub health: HealthMode,
    /// HTTP probe timeout ([`HealthMode::Http`] only).
    pub probe_timeout: Duration,
    /// First restart delay after a death; doubles per consecutive death.
    pub backoff_initial: Duration,
    /// Restart delay cap.
    pub backoff_max: Duration,
    /// Storm detection window.
    pub storm_window: Duration,
    /// Deaths within the window that pause restarts.
    pub storm_threshold: usize,
    /// Fault handle probed at `fleet.replica-kill` (per replica per tick).
    pub faults: Faults,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            command: Vec::new(),
            replicas: 3,
            base_port: 7180,
            health: HealthMode::Http,
            probe_timeout: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            storm_window: Duration::from_secs(10),
            storm_threshold: 5,
            faults: Faults::none(),
        }
    }
}

/// One supervision decision, for logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// A replica process was (re)started.
    Started {
        /// Replica index.
        replica: usize,
        /// Replica port.
        port: u16,
        /// OS process id.
        pid: u32,
        /// Lifetime restart count (0 = the initial start).
        restarts: u64,
    },
    /// A replica was found dead (exited, or failed its health probe).
    Died {
        /// Replica index.
        replica: usize,
        /// Replica port.
        port: u16,
    },
    /// A dead replica is waiting out its restart backoff.
    BackingOff {
        /// Replica index.
        replica: usize,
        /// Remaining delay, in milliseconds (coarse, for logging).
        remaining_ms: u64,
    },
    /// Restarts are paused: too many deaths inside the storm window.
    Storm {
        /// Replica index.
        replica: usize,
        /// Deaths currently inside the window.
        in_window: usize,
    },
    /// An armed `fleet.replica-kill` fault SIGKILLed this replica.
    KillInjected {
        /// Replica index.
        replica: usize,
        /// Replica port.
        port: u16,
    },
}

#[derive(Debug)]
struct Replica {
    port: u16,
    command: Vec<String>,
    child: Option<Child>,
    restarts: u64,
    deaths: VecDeque<Instant>,
    backoff: Duration,
    backoff_until: Option<Instant>,
}

/// The running fleet. Dropping it kills every child.
#[derive(Debug)]
pub struct Supervisor {
    config: FleetConfig,
    replicas: Vec<Replica>,
}

impl Supervisor {
    /// Spawns every replica and returns the supervisor. Replica `i`
    /// listens on `base_port + i` (the command template decides whether it
    /// actually binds there — `modsynfleet` passes `--addr
    /// 127.0.0.1:{port}`).
    ///
    /// # Errors
    ///
    /// The first spawn failure (already-spawned replicas are killed).
    pub fn start(config: FleetConfig) -> std::io::Result<Supervisor> {
        let mut replicas = Vec::with_capacity(config.replicas);
        for i in 0..config.replicas {
            let port = config.base_port + i as u16;
            let command = substitute(&config.command, i, port);
            let mut replica = Replica {
                port,
                command,
                child: None,
                restarts: 0,
                deaths: VecDeque::new(),
                backoff: config.backoff_initial,
                backoff_until: None,
            };
            replica.spawn()?;
            replicas.push(replica);
        }
        Ok(Supervisor { config, replicas })
    }

    /// The fleet's addresses (`127.0.0.1:port` per replica), for a
    /// [`crate::FleetRouter`].
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas
            .iter()
            .map(|r| SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), r.port))
            .collect()
    }

    /// The OS pid of a replica's current process, if it has one.
    pub fn pid(&self, replica: usize) -> Option<u32> {
        self.replicas.get(replica)?.child.as_ref().map(Child::id)
    }

    /// Lifetime restart count of one replica.
    pub fn restarts(&self, replica: usize) -> u64 {
        self.replicas.get(replica).map_or(0, |r| r.restarts)
    }

    /// SIGKILLs one replica now (the chaos lever; `kill -9` semantics via
    /// [`Child::kill`]). The corpse is left for the next [`Supervisor::tick`]
    /// to discover, so the death goes through the normal
    /// `Died → backoff → restart` path. Returns false for an unknown index
    /// or an already-dead replica.
    pub fn kill(&mut self, replica: usize) -> bool {
        let Some(r) = self.replicas.get_mut(replica) else {
            return false;
        };
        match r.child.as_mut() {
            Some(child) => {
                if !matches!(child.try_wait(), Ok(None)) {
                    return false; // already exited; tick() will reap it
                }
                let _ = child.kill();
                // Reap the zombie now; the stored exit status keeps the
                // corpse visible to the next tick's health judgement.
                let _ = child.wait();
                true
            }
            None => false,
        }
    }

    /// One supervision pass at `now`: probe the `fleet.replica-kill` fault
    /// site, judge health, reap the dead, restart after backoff (unless a
    /// storm is in progress). Returns the decisions made, in replica
    /// order.
    pub fn tick(&mut self, now: Instant) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        for i in 0..self.replicas.len() {
            // Chaos first: an injected kill this tick is then *observed*
            // by the same tick's health judgement below.
            if self.replicas[i].child.is_some() && self.config.faults.fire(site::FLEET_REPLICA_KILL)
            {
                let port = self.replicas[i].port;
                self.kill(i);
                events.push(FleetEvent::KillInjected { replica: i, port });
            }
            let r = &mut self.replicas[i];
            let alive = r.judge(self.config.health, self.config.probe_timeout);
            if alive {
                r.backoff = self.config.backoff_initial;
                r.backoff_until = None;
                continue;
            }
            if r.reap() {
                events.push(FleetEvent::Died {
                    replica: i,
                    port: r.port,
                });
                r.deaths.push_back(now);
                r.backoff_until = Some(now + r.backoff);
                r.backoff = (r.backoff * 2).min(self.config.backoff_max);
            }
            while let Some(&t) = r.deaths.front() {
                if now.duration_since(t) > self.config.storm_window {
                    r.deaths.pop_front();
                } else {
                    break;
                }
            }
            if r.deaths.len() >= self.config.storm_threshold {
                events.push(FleetEvent::Storm {
                    replica: i,
                    in_window: r.deaths.len(),
                });
                continue; // serve degraded until the window slides
            }
            if let Some(until) = r.backoff_until {
                if now < until {
                    events.push(FleetEvent::BackingOff {
                        replica: i,
                        remaining_ms: until.duration_since(now).as_millis() as u64,
                    });
                    continue;
                }
            }
            if r.spawn().is_ok() {
                r.restarts += 1;
                r.backoff_until = None;
                events.push(FleetEvent::Started {
                    replica: i,
                    port: r.port,
                    pid: r.child.as_ref().map_or(0, Child::id),
                    restarts: r.restarts,
                });
            }
        }
        events
    }

    /// Kills every replica and reaps it (also what drop does).
    pub fn shutdown(&mut self) {
        for r in &mut self.replicas {
            if let Some(mut child) = r.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Replica {
    fn spawn(&mut self) -> std::io::Result<()> {
        let (program, args) = self.command.split_first().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty command")
        })?;
        // Children own no pipes: a replica blocked writing into a full,
        // never-drained pipe would look healthy and serve nothing.
        let child = Command::new(program)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        self.child = Some(child);
        Ok(())
    }

    /// True when the replica should be treated as alive this tick.
    fn judge(&mut self, health: HealthMode, probe_timeout: Duration) -> bool {
        let Some(child) = self.child.as_mut() else {
            return false;
        };
        // A reaped exit status means dead under either mode.
        if !matches!(child.try_wait(), Ok(None)) {
            return false;
        }
        match health {
            HealthMode::Process => true,
            HealthMode::Http => {
                let addr = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), self.port);
                matches!(
                    client::request(addr, "GET", "/healthz", b"", probe_timeout),
                    Ok(r) if r.status == 200
                )
            }
        }
    }

    /// Clears a dead child, returning true when there was one to clear
    /// (i.e. this tick *discovered* the death).
    fn reap(&mut self) -> bool {
        match self.child.take() {
            Some(mut child) => {
                let _ = child.kill(); // no-op if already exited
                let _ = child.wait();
                true
            }
            None => false,
        }
    }
}

/// Substitutes `{port}` and `{replica}` in an argv template.
fn substitute(template: &[String], replica: usize, port: u16) -> Vec<String> {
    template
        .iter()
        .map(|arg| {
            arg.replace("{port}", &port.to_string())
                .replace("{replica}", &replica.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(command: &[&str], replicas: usize) -> FleetConfig {
        FleetConfig {
            command: command.iter().map(|s| s.to_string()).collect(),
            replicas,
            base_port: 0, // Process mode never dials the port
            health: HealthMode::Process,
            backoff_initial: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn substitution_fills_port_and_replica() {
        let argv: Vec<String> = [
            "modsynd",
            "--addr",
            "127.0.0.1:{port}",
            "--tag",
            "r{replica}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(
            substitute(&argv, 2, 7182),
            vec!["modsynd", "--addr", "127.0.0.1:7182", "--tag", "r2"]
        );
    }

    #[test]
    fn long_lived_children_stay_up_and_die_on_shutdown() {
        let mut sup = Supervisor::start(config(&["sleep", "60"], 2)).unwrap();
        let now = Instant::now();
        assert!(sup.tick(now).is_empty(), "healthy fleet makes no decisions");
        let pid = sup.pid(0).unwrap();
        assert!(pid > 0);
        sup.shutdown();
        assert!(sup.pid(0).is_none());
    }

    #[test]
    fn a_killed_replica_restarts_after_backoff() {
        let mut sup = Supervisor::start(config(&["sleep", "60"], 2)).unwrap();
        let first_pid = sup.pid(1).unwrap();
        assert!(sup.kill(1));
        let t0 = Instant::now();
        // Death tick: discovers the kill, schedules the backoff.
        let events = sup.tick(t0);
        assert!(
            events.contains(&FleetEvent::Died {
                replica: 1,
                port: 1
            }),
            "{events:?}"
        );
        // Before the backoff elapses nothing restarts…
        let events = sup.tick(t0);
        assert!(
            matches!(events[..], [FleetEvent::BackingOff { replica: 1, .. }]),
            "{events:?}"
        );
        // …after it, the replica comes back with a new pid.
        let events = sup.tick(t0 + Duration::from_millis(5));
        assert!(
            matches!(
                events[..],
                [FleetEvent::Started {
                    replica: 1,
                    restarts: 1,
                    ..
                }]
            ),
            "{events:?}"
        );
        assert_ne!(sup.pid(1).unwrap(), first_pid);
        assert_eq!(sup.restarts(1), 1);
    }

    #[test]
    fn crash_looping_replicas_trip_the_storm_brake() {
        let mut cfg = config(&["true"], 1); // exits immediately, forever
        cfg.storm_threshold = 3;
        cfg.backoff_initial = Duration::ZERO;
        cfg.backoff_max = Duration::ZERO;
        let mut sup = Supervisor::start(cfg).unwrap();
        let t0 = Instant::now();
        let mut stormed = false;
        for i in 0..20 {
            // Space the ticks out virtually; zero backoff keeps restarts
            // immediate until the storm brake takes over.
            std::thread::sleep(Duration::from_millis(2));
            let events = sup.tick(t0 + Duration::from_millis(i * 3));
            if events.iter().any(|e| matches!(e, FleetEvent::Storm { .. })) {
                stormed = true;
                break;
            }
        }
        assert!(stormed, "3 deaths in-window must pause restarts");
    }

    #[test]
    fn injected_replica_kill_fires_and_is_restarted() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let mut cfg = config(&["sleep", "60"], 2);
        cfg.backoff_initial = Duration::ZERO;
        cfg.faults = FaultPlan::new("test", 11)
            .rule(FaultRule::at(site::FLEET_REPLICA_KILL).times(1))
            .arm();
        let mut sup = Supervisor::start(cfg.clone()).unwrap();
        let t0 = Instant::now();
        let events = sup.tick(t0);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FleetEvent::KillInjected { replica: 0, .. })),
            "{events:?}"
        );
        assert_eq!(cfg.faults.injected_at(site::FLEET_REPLICA_KILL), 1);
        // The kill is observed and the replica restarted (zero backoff —
        // possibly a tick later, once the death is reaped).
        let mut restarted = sup.restarts(0) == 1;
        for i in 1..=3 {
            if restarted {
                break;
            }
            let _ = sup.tick(t0 + Duration::from_millis(i));
            restarted = sup.restarts(0) == 1;
        }
        assert!(restarted, "injected kill must lead to a restart");
    }
}
