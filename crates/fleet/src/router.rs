//! Consistent-hash routing with deterministic failover.
//!
//! Requests are routed by the STG's content digest using **rendezvous
//! (highest-random-weight) hashing**: every replica scores
//! `mix(digest ^ salt(replica))`, and the replicas are tried in descending
//! score order. Two properties fall out:
//!
//! * **Stability** — the same digest always prefers the same replica, so
//!   each replica's response cache and synthesis store warm up on *its*
//!   slice of the corpus instead of every replica paying for everything.
//! * **Minimal disruption** — when a replica dies, only the digests it
//!   owned move (to their second choice); the rest of the fleet's warm
//!   state is untouched. When it comes back, they move back.
//!
//! Failover is the client's job: [`FleetRouter::route`] walks the
//! rendezvous order, retrying transient failures per replica with the
//! existing [`client::request_with_backoff`] machinery, and falls to the
//! next replica on connect errors, torn responses, or 5xx statuses — a
//! `kill -9`'d replica costs one failed connect, not a failed request.

use std::net::SocketAddr;
use std::time::Duration;

use modsyn_fault::SplitMix64;
use modsyn_svc::client::{self, BackoffPolicy, ClientResponse};

/// A fixed set of replica addresses with rendezvous routing.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    addrs: Vec<SocketAddr>,
    /// Distinguishes independent fleets; 0 is fine for a single fleet.
    salt: u64,
}

impl FleetRouter {
    /// A router over `addrs` (typically [`crate::Supervisor::addrs`]).
    pub fn new(addrs: Vec<SocketAddr>) -> FleetRouter {
        FleetRouter { addrs, salt: 0 }
    }

    /// Replaces the fleet salt (independent fleets shuffle differently).
    pub fn with_salt(mut self, salt: u64) -> FleetRouter {
        self.salt = salt;
        self
    }

    /// The replica addresses, in configuration order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The failover order for `digest`: every replica, highest rendezvous
    /// score first. Deterministic in (digest, salt, addrs).
    pub fn order(&self, digest: u64) -> Vec<SocketAddr> {
        let mut scored: Vec<(u64, usize)> = (0..self.addrs.len())
            .map(|i| {
                let mut rng =
                    SplitMix64::new(digest ^ (i as u64).wrapping_mul(0x9E37_79B9) ^ self.salt);
                (rng.next_u64(), i)
            })
            .collect();
        // Descending score; index breaks the (astronomically unlikely) tie
        // so the order is total and platform-independent.
        scored.sort_by(|a, b| b.cmp(a));
        scored.into_iter().map(|(_, i)| self.addrs[i]).collect()
    }

    /// The preferred (first-choice) replica for `digest`.
    pub fn primary(&self, digest: u64) -> Option<SocketAddr> {
        self.order(digest).into_iter().next()
    }

    /// Routes one request by digest: walks [`FleetRouter::order`], giving
    /// each replica its own `request_with_backoff` budget, and fails over
    /// to the next on a socket error, torn response, or 5xx. Returns the
    /// first non-5xx response; when every replica fails, the last error or
    /// 5xx response.
    ///
    /// # Errors
    ///
    /// The final replica's socket failure, when every replica failed.
    pub fn route(
        &self,
        digest: u64,
        method: &str,
        target: &str,
        body: &[u8],
        timeout: Duration,
        policy: &BackoffPolicy,
    ) -> std::io::Result<ClientResponse> {
        let mut last: Option<std::io::Result<ClientResponse>> = None;
        for addr in self.order(digest) {
            let result = client::request_with_backoff(addr, method, target, body, timeout, policy);
            match &result {
                Ok(r) if r.status < 500 => return result,
                _ => last = Some(result),
            }
        }
        last.unwrap_or_else(|| {
            Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "fleet has no replicas",
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7800 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn order_is_deterministic_and_total() {
        let r = FleetRouter::new(addrs(5));
        for digest in [0u64, 1, 0xdead_beef, u64::MAX] {
            let a = r.order(digest);
            assert_eq!(a, r.order(digest), "same digest, same order");
            assert_eq!(a.len(), 5);
            let mut sorted = a.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "order is a permutation");
        }
    }

    #[test]
    fn digests_spread_across_replicas() {
        let r = FleetRouter::new(addrs(3));
        let mut counts = [0usize; 3];
        for digest in 0..300u64 {
            let primary = r
                .primary(digest.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .unwrap();
            let i = r.addrs().iter().position(|a| *a == primary).unwrap();
            counts[i] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "replica {i} owns {c}/300 digests — not a spread");
        }
    }

    #[test]
    fn losing_a_replica_only_moves_its_own_digests() {
        let full = FleetRouter::new(addrs(3));
        let degraded = FleetRouter::new(addrs(2)); // replica 2 "dead"
        for digest in 0..200u64 {
            let d = digest.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let first = full.primary(d).unwrap();
            if full.addrs()[..2].contains(&first) {
                // A digest the dead replica did not own keeps its primary.
                assert_eq!(degraded.primary(d).unwrap(), first);
            }
        }
    }

    #[test]
    fn salt_separates_fleets() {
        let a = FleetRouter::new(addrs(4));
        let b = FleetRouter::new(addrs(4)).with_salt(7);
        let differs = (0..64u64).any(|d| a.order(d) != b.order(d));
        assert!(differs, "salted fleet must shuffle differently");
    }

    #[test]
    fn empty_fleet_is_an_error_not_a_panic() {
        let r = FleetRouter::new(Vec::new());
        let err = r
            .route(
                1,
                "GET",
                "/healthz",
                b"",
                Duration::from_millis(10),
                &BackoffPolicy {
                    max_attempts: 1,
                    ..BackoffPolicy::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);
    }
}
