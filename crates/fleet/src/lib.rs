//! Self-healing `modsynd` replica fleet.
//!
//! One `modsynd` process is crash-safe (`--durable`: WAL + atomic snapshot
//! generations), but a single process is still a single point of
//! unavailability while it restarts and replays. This crate turns N
//! replicas into a fleet that survives `kill -9` with bounded client
//! impact:
//!
//! * [`Supervisor`] — spawns N replicas on consecutive ports, health-probes
//!   them each tick, restarts the dead with capped exponential backoff, and
//!   pauses a crash-looping replica via restart-storm detection. The
//!   `fleet.replica-kill` fault site turns it into the chaos lever the
//!   benchmark matrix certifies against.
//! * [`FleetRouter`] — a client-side consistent-hash (rendezvous) router:
//!   requests route by STG digest so each replica warms its own slice of
//!   the corpus, and failover walks the deterministic rendezvous order so
//!   losing a replica moves only that replica's digests.
//!
//! The `modsynfleet` binary wires both together: it supervises the fleet
//! and prints one line per supervision decision. Clients embed
//! [`FleetRouter`] directly (as `loadgen --fleet` and the chaos matrix do).
//!
//! Like the rest of the workspace this crate is std-only: supervision is
//! `std::process`, probes and routing ride the svc crate's HTTP client.

mod router;
mod supervisor;

pub use router::FleetRouter;
pub use supervisor::{FleetConfig, FleetEvent, HealthMode, Supervisor};

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use modsyn_svc::client;

/// Locates a sibling binary of the current executable (e.g. `modsynd` next
/// to `modsynfleet`, or one directory up from a test runner in
/// `target/<profile>/deps/`).
///
/// # Errors
///
/// `NotFound` when the binary is in neither directory.
pub fn sibling_binary(name: &str) -> std::io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let dir = exe
        .parent()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "exe has no parent"))?;
    let mut candidates = vec![dir.join(name)];
    if let Some(up) = dir.parent() {
        candidates.push(up.join(name));
    }
    candidates.into_iter().find(|p| p.is_file()).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("sibling binary {name:?} not found next to the current executable"),
        )
    })
}

/// Polls `GET path` on `addr` until it answers 200 or the deadline passes.
/// Returns whether the endpoint became ready. Useful for waiting out a
/// replica's startup (on `/healthz`) or its recovery replay (on `/readyz`).
pub fn wait_for_200(addr: SocketAddr, path: &str, deadline: Duration) -> bool {
    let start = Instant::now();
    loop {
        if matches!(
            client::request(addr, "GET", path, b"", Duration::from_millis(250)),
            Ok(r) if r.status == 200
        ) {
            return true;
        }
        if start.elapsed() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
